// Session-level server tests: two interleaved sessions never observe each
// other (swept across matchers and match-thread counts), WAL-only recovery
// is bit-identical (working memory, tag counter, conflict set with
// refraction flags, metric counters, output, trace), snapshots restore
// state equivalence including refraction, and the transactional edge cases
// (empty-netted commits, run-inside-transaction) behave as documented.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "server/session.h"
#include "server/wal.h"
#include "server_test_util.h"

namespace sorel {
namespace server {
namespace {

constexpr const char* kTupleRules = R"(
(literalize item id cat val)
(p promote { (item ^cat A ^val <v>) <i> } -->
  (modify <i> ^cat B ^val (compute <v> * 2))
  (write promoted <v> (crlf)))
(p chain (item ^cat B ^val <v>) { (item ^cat C ^val <v>) <c> } -->
  (remove <c>)
  (write chained <v> (crlf)))
)";

Value Sym(Session& s, const char* text) {
  return Value::Symbol(s.engine().symbols().Intern(text));
}

TimeTag MustMake(Session& s, const char* cat, int64_t id, int64_t val) {
  auto tag = s.Make("item", {{"id", Value::Int(id)},
                             {"cat", Sym(s, cat)},
                             {"val", Value::Int(val)}});
  EXPECT_TRUE(tag.ok()) << tag.status().ToString();
  return *tag;
}

/// The fixed command stream the isolation test runs per session — makes,
/// runs, a client transaction, and client-side removes/modifies of `C`
/// items (which no rule rewrites, so client-held tags stay valid).
void DriveStream(Session& s, int64_t base) {
  MustMake(s, "A", 1, base + 1);
  TimeTag c1 = MustMake(s, "C", 2, base + 2);
  MustMake(s, "A", 3, base + 3);
  ASSERT_TRUE(s.Run(-1).ok());
  TimeTag c2 = MustMake(s, "C", 4, base + 4);
  auto modified = s.Modify(c2, {{"val", Value::Int(base + 40)}});
  ASSERT_TRUE(modified.ok());
  ASSERT_TRUE(s.Remove(c1).ok());
  ASSERT_TRUE(s.Begin().ok());
  MustMake(s, "A", 5, base + 5);
  MustMake(s, "C", 6, 2 * (base + 5));  // matches `chain` after promote
  ASSERT_TRUE(s.Commit().ok());
  ASSERT_TRUE(s.Run(-1).ok());
}

struct SweepConfig {
  MatcherKind matcher;
  const char* name;
  int threads;
};

const SweepConfig kSweep[] = {
    {MatcherKind::kRete, "rete", 0},  {MatcherKind::kRete, "rete", 4},
    {MatcherKind::kTreat, "treat", 0}, {MatcherKind::kTreat, "treat", 4},
    {MatcherKind::kPlan, "plan", 0},  {MatcherKind::kPlan, "plan", 4},
};

TEST(SessionIsolationTest, InterleavedSessionsMatchSoloRuns) {
  for (const SweepConfig& config : kSweep) {
    SCOPED_TRACE(std::string(config.name) + " threads=" +
                 std::to_string(config.threads));
    TempDir dir;
    SessionOptions options;
    options.matcher = config.matcher;
    options.match_threads = config.threads;

    // Two sessions, commands interleaved step by step.
    auto a = Session::Open("a", kTupleRules, dir.path(), options);
    auto b = Session::Open("b", kTupleRules, dir.path(), options);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    {
      // DriveStream's command order per session, interleaved across the
      // two sessions (each session's own order is preserved — only the
      // cross-session scheduling varies).
      Session& sa = **a;
      Session& sb = **b;
      MustMake(sa, "A", 1, 101);
      MustMake(sb, "A", 1, 201);
      TimeTag ca = MustMake(sa, "C", 2, 102);
      TimeTag cb = MustMake(sb, "C", 2, 202);
      MustMake(sa, "A", 3, 103);
      MustMake(sb, "A", 3, 203);
      ASSERT_TRUE(sb.Run(-1).ok());
      ASSERT_TRUE(sa.Run(-1).ok());
      TimeTag ca2 = MustMake(sa, "C", 4, 104);
      TimeTag cb2 = MustMake(sb, "C", 4, 204);
      ASSERT_TRUE(sa.Modify(ca2, {{"val", Value::Int(140)}}).ok());
      ASSERT_TRUE(sb.Modify(cb2, {{"val", Value::Int(240)}}).ok());
      ASSERT_TRUE(sb.Remove(cb).ok());
      ASSERT_TRUE(sa.Remove(ca).ok());
      ASSERT_TRUE(sa.Begin().ok());
      MustMake(sa, "A", 5, 105);
      ASSERT_TRUE(sb.Begin().ok());
      MustMake(sb, "A", 5, 205);
      MustMake(sa, "C", 6, 210);
      MustMake(sb, "C", 6, 410);
      ASSERT_TRUE(sb.Commit().ok());
      ASSERT_TRUE(sa.Commit().ok());
      ASSERT_TRUE(sa.Run(-1).ok());
      ASSERT_TRUE(sb.Run(-1).ok());
    }

    // Solo references: the same per-session command streams, no
    // interleaving (and note DriveStream's order is the contiguous version
    // of the interleaved order above).
    TempDir solo_dir;
    auto ra = Session::Open("a", kTupleRules, solo_dir.path(), options);
    auto rb = Session::Open("b", kTupleRules, solo_dir.path(), options);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    DriveStream(**ra, 100);
    DriveStream(**rb, 200);

    Fingerprint fa = Capture(**a);
    Fingerprint fb = Capture(**b);
    EXPECT_TRUE(fa == Capture(**ra)) << "session a diverged from solo run";
    EXPECT_TRUE(fb == Capture(**rb)) << "session b diverged from solo run";
    // And the two sessions genuinely hold different state (the isolation
    // check is not vacuous).
    EXPECT_NE(fa.dump, fb.dump);
    EXPECT_EQ((*a)->DrainOutput(), (*ra)->DrainOutput());
    EXPECT_EQ((*b)->DrainOutput(), (*rb)->DrainOutput());
  }
}

TEST(SessionRecoveryTest, WalOnlyRecoveryIsBitIdentical) {
  for (const SweepConfig& config : kSweep) {
    SCOPED_TRACE(std::string(config.name) + " threads=" +
                 std::to_string(config.threads));
    TempDir dir;
    SessionOptions options;
    options.matcher = config.matcher;
    options.match_threads = config.threads;
    options.capture_trace = true;

    std::string live_out, live_trace;
    Fingerprint live;
    {
      auto session = Session::Open("s", kTupleRules, dir.path(), options);
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      DriveStream(**session, 300);
      live = Capture(**session);
      live_out = (*session)->DrainOutput();
      live_trace = (*session)->DrainTrace();
    }

    auto recovered = Session::Open("s", kTupleRules, dir.path(), options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_FALSE((*recovered)->recovery().had_snapshot);
    EXPECT_GT((*recovered)->recovery().replayed_records, 0u);
    EXPECT_EQ((*recovered)->recovery().torn_bytes, 0u);

    Fingerprint after = Capture(**recovered);
    EXPECT_EQ(after.dump, live.dump);
    EXPECT_EQ(after.next_tag, live.next_tag);
    EXPECT_EQ(after.cs, live.cs);
    EXPECT_EQ(after.counters, live.counters);  // counter bit-identity
    EXPECT_EQ((*recovered)->DrainOutput(), live_out);
    EXPECT_EQ((*recovered)->DrainTrace(), live_trace);
  }
}

TEST(SessionRecoveryTest, LsnsContinueAfterRecovery) {
  TempDir dir;
  uint64_t next_lsn;
  {
    auto session = Session::Open("s", kTupleRules, dir.path(), {});
    ASSERT_TRUE(session.ok());
    MustMake(**session, "C", 1, 1);
    MustMake(**session, "C", 2, 2);
    next_lsn = (*session)->next_lsn();
    EXPECT_EQ(next_lsn, 3u);  // two direct records journaled
  }
  auto recovered = Session::Open("s", kTupleRules, dir.path(), {});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->next_lsn(), next_lsn);
  MustMake(**recovered, "C", 3, 3);
  EXPECT_EQ((*recovered)->next_lsn(), next_lsn + 1);
}

TEST(SessionSnapshotTest, RestoreMatchesLiveState) {
  for (const SweepConfig& config : kSweep) {
    SCOPED_TRACE(std::string(config.name) + " threads=" +
                 std::to_string(config.threads));
    TempDir dir;
    SessionOptions options;
    options.matcher = config.matcher;
    options.match_threads = config.threads;

    Fingerprint live;
    std::string live_continuation;
    {
      auto session = Session::Open("s", kTupleRules, dir.path(), options);
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      DriveStream(**session, 500);
      // Leave an eligible entry in the conflict set (snapshot must carry
      // unfired entries too, not just fired flags).
      MustMake(**session, "A", 9, 999);
      ASSERT_TRUE((*session)->TakeSnapshot().ok());
      // The WAL file was truncated (writer stats stay cumulative).
      auto truncated = ReadWal((*session)->wal_path());
      ASSERT_TRUE(truncated.ok());
      EXPECT_TRUE(truncated->records.empty());
      live = Capture(**session);
      // What a continuation would do, from the live state.
      (void)(*session)->DrainOutput();
      ASSERT_TRUE((*session)->Run(-1).ok());
      live_continuation = (*session)->DrainOutput();
      // This session is abandoned — the run above was journaled, but the
      // recovery below reopens from a copy-free snapshot-only view only
      // when the WAL is gone; instead just verify against the *snapshot*
      // state by removing the post-snapshot WAL records.
    }
    // Drop the post-snapshot run record so recovery lands exactly on the
    // snapshot state.
    std::remove(((dir.path() + "/s.wal")).c_str());

    auto recovered = Session::Open("s", kTupleRules, dir.path(), options);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE((*recovered)->recovery().had_snapshot);
    EXPECT_EQ((*recovered)->recovery().replayed_records, 0u);

    Fingerprint after = Capture(**recovered);
    EXPECT_EQ(after.dump, live.dump);
    EXPECT_EQ(after.next_tag, live.next_tag);
    EXPECT_EQ(after.cs, live.cs);  // refraction flags included

    // The restored session continues exactly as the live one would have.
    (void)(*recovered)->DrainOutput();
    ASSERT_TRUE((*recovered)->Run(-1).ok());
    EXPECT_EQ((*recovered)->DrainOutput(), live_continuation);
  }
}

TEST(SessionSnapshotTest, SnapshotPlusWalTailRecovers) {
  TempDir dir;
  Fingerprint live;
  {
    auto session = Session::Open("s", kTupleRules, dir.path(), {});
    ASSERT_TRUE(session.ok());
    MustMake(**session, "A", 1, 1);
    ASSERT_TRUE((*session)->Run(-1).ok());
    ASSERT_TRUE((*session)->TakeSnapshot().ok());
    // Post-snapshot history that only the WAL holds.
    MustMake(**session, "A", 2, 2);
    TimeTag c = MustMake(**session, "C", 3, 4);
    ASSERT_TRUE((*session)->Run(-1).ok());
    (void)(*session)->Remove(c);  // `chain` may have consumed it already
    live = Capture(**session);
  }
  auto recovered = Session::Open("s", kTupleRules, dir.path(), {});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->recovery().had_snapshot);
  EXPECT_GT((*recovered)->recovery().replayed_records, 0u);
  Fingerprint after = Capture(**recovered);
  EXPECT_EQ(after.dump, live.dump);
  EXPECT_EQ(after.next_tag, live.next_tag);
  EXPECT_EQ(after.cs, live.cs);
}

TEST(SessionSnapshotTest, FiredSoiRestoresIneligible) {
  // A set-oriented instantiation stays in the conflict set after firing,
  // flagged fired. The snapshot must bring it back ineligible — otherwise
  // the restored session re-fires a rule the live one already fired.
  constexpr const char* kSetRules = R"(
(literalize item id cat val)
(p total { [item ^cat A ^val <v>] <P> } :test ((count <P>) >= 1) -->
  (write total (crlf)))
)";
  TempDir dir;
  {
    auto session = Session::Open("s", kSetRules, dir.path(), {});
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    MustMake(**session, "A", 1, 5);
    MustMake(**session, "A", 2, 6);
    auto fired = (*session)->Run(-1);
    ASSERT_TRUE(fired.ok());
    EXPECT_EQ(*fired, 1);  // the SOI fired once and is now refracted
    EXPECT_EQ((*session)->engine().conflict_set().size(), 1u);
    EXPECT_EQ((*session)->engine().conflict_set().EligibleCount(), 0u);
    ASSERT_TRUE((*session)->TakeSnapshot().ok());
  }
  std::remove((dir.path() + "/s.wal").c_str());

  auto recovered = Session::Open("s", kSetRules, dir.path(), {});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->engine().conflict_set().size(), 1u);
  EXPECT_EQ((*recovered)->engine().conflict_set().EligibleCount(), 0u);
  (void)(*recovered)->DrainOutput();
  auto fired = (*recovered)->Run(-1);
  ASSERT_TRUE(fired.ok());
  EXPECT_EQ(*fired, 0);  // refraction survived the restore
  // ...until the set actually changes, which re-arms it.
  MustMake(**recovered, "A", 3, 7);
  fired = (*recovered)->Run(-1);
  ASSERT_TRUE(fired.ok());
  EXPECT_EQ(*fired, 1);
}

TEST(SessionTransactionTest, EmptyNettedCommitPreservesTagCounter) {
  TempDir dir;
  TimeTag live_next;
  {
    auto session = Session::Open("s", kTupleRules, dir.path(), {});
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE((*session)->Begin().ok());
    TimeTag tag = MustMake(**session, "C", 1, 1);
    ASSERT_TRUE((*session)->Remove(tag).ok());
    ASSERT_TRUE((*session)->Commit().ok());  // nets to nothing
    live_next = (*session)->engine().wm().next_time_tag();
    EXPECT_GT(live_next, 1);  // the tag was consumed
    // The netted commit still journaled (an empty batch with the counter).
    EXPECT_EQ((*session)->wal_stats().records, 1u);
  }
  auto recovered = Session::Open("s", kTupleRules, dir.path(), {});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->engine().wm().next_time_tag(), live_next);
}

TEST(SessionTransactionTest, RollbackLeavesNoWalRecord) {
  TempDir dir;
  auto session = Session::Open("s", kTupleRules, dir.path(), {});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->Begin().ok());
  MustMake(**session, "C", 1, 1);
  ASSERT_TRUE((*session)->Rollback().ok());
  EXPECT_EQ((*session)->wal_stats().records, 0u);
  EXPECT_FALSE((*session)->Rollback().ok());  // no open transaction
}

TEST(SessionTransactionTest, RunRefusedInsideTransaction) {
  TempDir dir;
  auto session = Session::Open("s", kTupleRules, dir.path(), {});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->Begin().ok());
  auto run = (*session)->Run(-1);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  // No WAL record was written for the refused run.
  EXPECT_EQ((*session)->wal_stats().records, 0u);
  ASSERT_TRUE((*session)->Rollback().ok());
  ASSERT_TRUE((*session)->Run(-1).ok());  // fine outside the transaction
}

TEST(SessionTransactionTest, SnapshotRefusedInsideTransaction) {
  TempDir dir;
  auto session = Session::Open("s", kTupleRules, dir.path(), {});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE((*session)->Begin().ok());
  EXPECT_FALSE((*session)->TakeSnapshot().ok());
}

}  // namespace
}  // namespace server
}  // namespace sorel
