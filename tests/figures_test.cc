// End-to-end reproductions of the paper's Figures 1, 2, 4, and 5.
// (Figure 3 is the S-node algorithm, exercised by snode_test.cc;
//  Figure 6 is the DIPS mapping, exercised by dips_test.cc.)

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace sorel {
namespace {

// ------------------------------------------------------------- Figure 1 ---
// The tuple-oriented `compete` rule produces six instantiations: the cross
// product of the two A players and the three B players.
TEST(Figure1, SixInstantiationsInConflictSet) {
  std::ostringstream out;
  Engine engine;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p compete (player ^name <n1> ^team A)"
                       "           (player ^name <n2> ^team B) -->"
                       " (write PlayerA: <n1> PlayerB: <n2> (crlf)))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(engine.conflict_set().size(), 6u);
  EXPECT_EQ(MustRun(engine), 6);
  // Each instantiation fires exactly once (refraction): 6 lines.
  std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
  // Quiescent afterwards.
  EXPECT_EQ(MustRun(engine), 0);
}

// ------------------------------------------------------------- Figure 2 ---
// All-set LHS -> one SOI holding the entire 6-row relation.
TEST(Figure2, AllSetCesGiveOneSoi) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p compete [player ^name <n1> ^team A]"
                       "           [player ^name <n2> ^team B] -->"
                       " (foreach <n1> (write <n1> (crlf))))");
  MakeFigure1Wm(engine);
  SNode* snode = engine.snode("compete");
  ASSERT_NE(snode, nullptr);
  EXPECT_EQ(snode->num_sois(), 1u);
  EXPECT_EQ(snode->sois()[0]->size(), 6u);
  EXPECT_EQ(engine.conflict_set().size(), 1u);
  EXPECT_EQ(MustRun(engine, 1), 1);
}

// Mixed LHS: the regular CE partitions the relation -> three SOIs of two
// rows each (one per B player).
TEST(Figure2, MixedCesPartitionIntoThreeSois) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p compete [player ^name <n1> ^team A]"
                       "           (player ^name <n2> ^team B) -->"
                       " (write <n2> (crlf)))");
  MakeFigure1Wm(engine);
  SNode* snode = engine.snode("compete");
  ASSERT_NE(snode, nullptr);
  EXPECT_EQ(snode->num_sois(), 3u);
  for (const Soi* soi : snode->sois()) {
    EXPECT_EQ(soi->size(), 2u);
    EXPECT_TRUE(soi->active());
  }
  EXPECT_EQ(engine.conflict_set().size(), 3u);
  EXPECT_EQ(MustRun(engine), 3);
}

// The set-oriented instantiation is exactly the union of the regular
// instantiations (Figure 2's invariant).
TEST(Figure2, SoiRowsEqualRegularInstantiations) {
  Engine set_engine, reg_engine;
  std::ostringstream devnull;
  set_engine.set_output(&devnull);
  reg_engine.set_output(&devnull);
  MustLoad(set_engine, std::string(kPlayerSchema) +
                           "(p c [player ^name <n1> ^team A]"
                           "     [player ^name <n2> ^team B] --> (halt))");
  MustLoad(reg_engine, std::string(kPlayerSchema) +
                           "(p c (player ^name <n1> ^team A)"
                           "     (player ^name <n2> ^team B) --> (halt))");
  MakeFigure1Wm(set_engine);
  MakeFigure1Wm(reg_engine);
  SNode* snode = set_engine.snode("c");
  ASSERT_EQ(snode->num_sois(), 1u);
  EXPECT_EQ(snode->sois()[0]->size(), reg_engine.conflict_set().size());
}

// ------------------------------------------------------------- Figure 4 ---
// GroupByTeam: nested foreach over PV bindings, default (conflict-set)
// order. The paper walks the iterations: first <t>=B with <n>=Sue then
// <n>=Jack (Sue printed once for team B!), then <t>=A.
TEST(Figure4, GroupByTeamIterationOrderAndDedup) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p GroupByTeam [player ^team <t> ^name <n>] -->"
                       " (foreach <t> (write <t> (crlf))"
                       "   (foreach <n> (write <n> (crlf)))))");
  MakeFigure1Wm(engine);
  SNode* snode = engine.snode("GroupByTeam");
  ASSERT_NE(snode, nullptr);
  ASSERT_EQ(snode->num_sois(), 1u);
  EXPECT_EQ(snode->sois()[0]->size(), 5u);
  EXPECT_EQ(MustRun(engine, 1), 1);
  EXPECT_EQ(out.str(), "B\nSue\nJack\nA\nJanice\nJack\n");
}

// The current value of <t> constrains the domain of <n> in each iteration
// (compositional selection).
TEST(Figure4, OuterIterationConstrainsInnerDomain) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p r [player ^team <t> ^name <n>] -->"
                       " (foreach <t> ascending"
                       "   (write <t> has (count <n>) (crlf))))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(MustRun(engine, 1), 1);
  // Team A has 2 distinct names, team B has 2 (Sue deduplicated).
  EXPECT_EQ(out.str(), "A has 2\nB has 2\n");
}

// ------------------------------------------------------------- Figure 5 ---
// SwitchTeams: modify a set of elements in a single firing, guarded by a
// second-order test on the cardinalities.
TEST(Figure5, SwitchTeamsModifiesWholeSets) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p SwitchTeams"
                       " { [player ^team A] <ATeam> }"
                       " { [player ^team B] <BTeam> }"
                       " :test ((count <ATeam>) == (count <BTeam>)) -->"
                       " (set-modify <ATeam> ^team B)"
                       " (set-modify <BTeam> ^team A))");
  TimeTag a1 = MustMake(engine, "player", {{"name", engine.Sym("Jack")},
                                           {"team", engine.Sym("A")}});
  TimeTag a2 = MustMake(engine, "player", {{"name", engine.Sym("Janice")},
                                           {"team", engine.Sym("A")}});
  MustMake(engine, "player",
           {{"name", engine.Sym("Sue")}, {"team", engine.Sym("B")}});
  MustMake(engine, "player",
           {{"name", engine.Sym("Jack")}, {"team", engine.Sym("B")}});
  (void)a1;
  (void)a2;
  EXPECT_EQ(MustRun(engine, 1), 1);
  // Every player switched teams; WM still has 4 players.
  EXPECT_EQ(engine.wm().size(), 4u);
  SymbolId team = engine.symbols().Intern("team");
  SymbolId name = engine.symbols().Intern("name");
  int team_a = 0, team_b = 0;
  bool jack_janice_now_b = true;
  for (const WmePtr& w : engine.wm().Snapshot()) {
    const ClassSchema* s = engine.schemas().Find(w->cls());
    Value t = w->field(s->FieldOf(team));
    Value n = w->field(s->FieldOf(name));
    if (t == engine.Sym("A")) ++team_a;
    if (t == engine.Sym("B")) ++team_b;
    if ((n == engine.Sym("Janice")) && !(t == engine.Sym("B"))) {
      jack_janice_now_b = false;
    }
  }
  EXPECT_EQ(team_a, 2);
  EXPECT_EQ(team_b, 2);
  EXPECT_TRUE(jack_janice_now_b);
  // The modified sets changed the SOI: eligible to fire again (ping-pong),
  // per the paper's control semantics (§6).
  EXPECT_EQ(engine.conflict_set().EligibleCount(), 1u);
}

TEST(Figure5, SwitchTeamsTestBlocksUnequalSets) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p SwitchTeams"
                       " { [player ^team A] <ATeam> }"
                       " { [player ^team B] <BTeam> }"
                       " :test ((count <ATeam>) == (count <BTeam>)) -->"
                       " (set-modify <ATeam> ^team B)"
                       " (set-modify <BTeam> ^team A))");
  MakeFigure1Wm(engine);  // 2 A players vs 3 B players
  EXPECT_EQ(engine.conflict_set().EligibleCount(), 0u);
  EXPECT_EQ(MustRun(engine), 0);
}

// GroupByA: each team-A player grouped with the team-B competitors.
TEST(Figure5, GroupByAHierarchicalDecomposition) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p GroupByA [player ^name <n1> ^team A]"
                       "            [player ^name <n2> ^team B] -->"
                       " (foreach <n1> ascending (write <n1> :)"
                       "   (foreach <n2> ascending (write <n2>))"
                       "   (write (crlf))))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(MustRun(engine, 1), 1);
  EXPECT_EQ(out.str(), "Jack : Jack Sue\nJanice : Jack Sue\n");
}

// RemoveDups: one instantiation per duplicated (name, team) pair; deletes
// all but the most recent WME.
TEST(Figure5, RemoveDupsKeepsMostRecent) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p RemoveDups"
                       " { [player ^name <n> ^team <t>] <P> }"
                       " :scalar (<n> <t>)"
                       " :test ((count <P>) > 1) -->"
                       " (bind <First> true)"
                       " (foreach <P> descending"
                       "   (if (<First> == true) (bind <First> false)"
                       "    else (remove <P>))))");
  MakeFigure1Wm(engine);  // tags 3 and 5 are duplicate (Sue, B)
  // Exactly one SOI passes the :test.
  EXPECT_EQ(engine.conflict_set().EligibleCount(), 1u);
  EXPECT_EQ(MustRun(engine), 1);
  EXPECT_EQ(engine.wm().size(), 4u);
  EXPECT_EQ(engine.wm().Find(3), nullptr);   // older duplicate removed
  EXPECT_NE(engine.wm().Find(5), nullptr);   // most recent kept
  EXPECT_EQ(MustRun(engine), 0);             // quiescent: no more dups
}

// AlternativeRemoveDups matches all players and "can fire unnecessarily"
// (the paper's point): it fires once to do the work and once more finding
// nothing to remove.
TEST(Figure5, AlternativeRemoveDupsFiresUnnecessarily) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p AltRemoveDups"
                       " { [player ^name <n> ^team <t>] <P> } -->"
                       " (foreach <n> (foreach <t>"
                       "   (bind <First> true)"
                       "   (foreach <P> descending"
                       "     (if (<First> == true) (bind <First> false)"
                       "      else (remove <P>))))))");
  MakeFigure1Wm(engine);
  int fired = MustRun(engine, 10);
  EXPECT_EQ(engine.wm().size(), 4u);
  EXPECT_EQ(engine.wm().Find(3), nullptr);
  EXPECT_EQ(fired, 2);  // one useful firing + one no-op firing
}

}  // namespace
}  // namespace sorel
