// Odds and ends: SortedEligible ordering, WM listener ordering, value
// formatting, network dump after excise, and printer-compiler interplay.

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace sorel {
namespace {

TEST(SortedEligibleTest, BestFirstAndSkipsFired) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p r (player ^name <n>) --> (bind <x> 1))");
  MustMake(engine, "player", {{"name", engine.Sym("a")}});
  MustMake(engine, "player", {{"name", engine.Sym("b")}});
  MustMake(engine, "player", {{"name", engine.Sym("c")}});
  auto eligible = engine.conflict_set().SortedEligible(Strategy::kLex);
  ASSERT_EQ(eligible.size(), 3u);
  EXPECT_EQ(eligible[0]->RecencyTags().front(), 3);
  EXPECT_EQ(eligible[2]->RecencyTags().front(), 1);
  engine.conflict_set().MarkFired(eligible[0], /*remove_entry=*/true);
  EXPECT_EQ(engine.conflict_set().SortedEligible(Strategy::kLex).size(), 2u);
}

TEST(WmListenerTest, MatcherSeesChangesBeforeTracer) {
  // Tracing output must reflect an already-updated conflict set: the
  // matcher is registered first and listeners run in order.
  EngineOptions options;
  options.trace_wm = true;
  Engine engine(options);
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p r (player) --> (bind <x> 1))");
  MustMake(engine, "player", {});
  EXPECT_EQ(engine.conflict_set().size(), 1u);
  EXPECT_NE(out.str().find("==> 1: (player)"), std::string::npos);
}

TEST(ValueFormatTest, FloatRendering) {
  SymbolTable t;
  EXPECT_EQ(Value::Float(1.0).ToString(t), "1");
  EXPECT_EQ(Value::Float(0.5).ToString(t), "0.5");
  EXPECT_EQ(Value::Float(-2.25).ToString(t), "-2.25");
  EXPECT_EQ(Value::Float(1e10).ToString(t), "1e+10");
}

TEST(ValueFormatTest, HashEqualityContract) {
  // Spot-check: equal values hash equally across kinds.
  for (int i = -100; i <= 100; i += 7) {
    EXPECT_EQ(Value::Int(i), Value::Float(static_cast<double>(i)));
    EXPECT_EQ(Value::Int(i).Hash(),
              Value::Float(static_cast<double>(i)).Hash());
  }
}

TEST(NetworkDumpTest, ReflectsExcision) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p gone (player ^team A) --> (halt))"
                       "(p kept (player ^team B) --> (halt))");
  ASSERT_TRUE(engine.ExciseRule("gone").ok());
  std::ostringstream dump;
  engine.rete_matcher()->DumpNetwork(dump, engine.symbols());
  EXPECT_EQ(dump.str().find("rule gone"), std::string::npos);
  EXPECT_NE(dump.str().find("rule kept"), std::string::npos);
}

TEST(DumpWmTest, EmptyWmIsValidStartup) {
  Engine engine;
  std::ostringstream dump;
  engine.DumpWm(dump);
  Engine fresh;
  EXPECT_TRUE(fresh.LoadString(dump.str()).ok());
  EXPECT_EQ(fresh.wm().size(), 0u);
}

TEST(RunParallelTest, InterleavesWithSequentialRun) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p tag { (player ^team A) <p> } -->"
                       " (modify <p> ^team done))");
  for (int i = 0; i < 4; ++i) {
    MustMake(engine, "player", {{"team", engine.Sym("A")}});
  }
  EXPECT_EQ(MustRun(engine, 2), 2);        // two sequential firings
  auto cycles = engine.RunParallel();      // the rest in one batch
  ASSERT_TRUE(cycles.ok());
  EXPECT_EQ(*cycles, 1);
  EXPECT_EQ(engine.parallel_stats().firings, 2u);
}

TEST(EngineApiTest, SymInternsConsistently) {
  Engine engine;
  EXPECT_EQ(engine.Sym("abc"), engine.Sym("abc"));
  EXPECT_NE(engine.Sym("abc"), engine.Sym("abd"));
  EXPECT_EQ(engine.Sym("nil"), Value::Symbol(SymbolTable::kNil));
}

TEST(EngineApiTest, FindRuleAndRulesAccessors) {
  Engine engine;
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p one (player) --> (halt))"
                       "(p two (player) --> (halt))");
  EXPECT_EQ(engine.rules().size(), 2u);
  EXPECT_NE(engine.FindRule("one"), nullptr);
  EXPECT_EQ(engine.FindRule("three"), nullptr);
}

}  // namespace
}  // namespace sorel
