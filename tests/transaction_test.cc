// Transaction semantics of the working memory and the RHS executor:
//   1. Begin/Commit delivers all staged changes as one ChangeBatch;
//      Rollback undoes them and listeners never observe them.
//   2. Nested transactions (savepoints) roll back independently.
//   3. A WME made and removed in the same transaction nets out.
//   4. A set-modify / set-remove / modify that errors on its k-th member
//      leaves the working memory exactly as it was before the firing
//      (the §8.1 all-or-nothing guarantee).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "tests/test_util.h"
#include "wm/change_batch.h"
#include "wm/working_memory.h"

namespace sorel {
namespace {

/// Records every notification it receives, tagging batch boundaries.
class RecordingListener : public WorkingMemory::Listener {
 public:
  void OnAdd(const WmePtr& wme) override {
    events.push_back("+" + std::to_string(wme->time_tag()));
  }
  void OnRemove(const WmePtr& wme) override {
    events.push_back("-" + std::to_string(wme->time_tag()));
  }
  void OnBatch(const ChangeBatch& batch) override {
    events.push_back("[" + std::to_string(batch.size()));
    WorkingMemory::Listener::OnBatch(batch);
    events.push_back("]");
  }

  std::vector<std::string> events;
};

class WmTransactionTest : public ::testing::Test {
 protected:
  WmTransactionTest() : wm_(&schemas_, &symbols_) {
    cls_ = symbols_.Intern("item");
    EXPECT_TRUE(schemas_.Declare(cls_, {symbols_.Intern("v")}, symbols_).ok());
    wm_.AddListener(&listener_);
  }

  WmePtr Make(int64_t v) {
    auto r = wm_.MakeFromFields(cls_, {Value::Int(v)});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  SymbolTable symbols_;
  SchemaRegistry schemas_;
  WorkingMemory wm_;
  RecordingListener listener_;
  SymbolId cls_;
};

TEST_F(WmTransactionTest, CommitDeliversOneBatchInStagingOrder) {
  wm_.Begin();
  WmePtr a = Make(1);
  WmePtr b = Make(2);
  ASSERT_TRUE(wm_.Remove(a->time_tag()).ok());
  // Nothing delivered while the transaction is open; reads see the staged
  // state immediately.
  EXPECT_TRUE(listener_.events.empty());
  EXPECT_EQ(wm_.Find(a->time_tag()), nullptr);
  EXPECT_NE(wm_.Find(b->time_tag()), nullptr);
  ASSERT_TRUE(wm_.Commit().ok());
  // The add of `a` netted out against its removal: one batch, one change.
  std::vector<std::string> want = {"[1", "+2", "]"};
  EXPECT_EQ(listener_.events, want);
  EXPECT_EQ(wm_.stats().batches, 1u);
  EXPECT_EQ(wm_.stats().batched_changes, 1u);
  EXPECT_EQ(wm_.stats().direct_events, 0u);
}

TEST_F(WmTransactionTest, RollbackRestoresLiveSetSilently) {
  WmePtr pre = Make(7);
  listener_.events.clear();
  wm_.Begin();
  Make(8);
  ASSERT_TRUE(wm_.Remove(pre->time_tag()).ok());
  wm_.Rollback();
  EXPECT_TRUE(listener_.events.empty());
  EXPECT_EQ(wm_.size(), 1u);
  EXPECT_NE(wm_.Find(pre->time_tag()), nullptr);
  EXPECT_EQ(wm_.stats().rollbacks, 1u);
  // Rolled-back transactions must not leak into a later commit.
  wm_.Begin();
  WmePtr later = Make(9);
  ASSERT_TRUE(wm_.Commit().ok());
  std::vector<std::string> want = {"[1",
                                   "+" + std::to_string(later->time_tag()),
                                   "]"};
  EXPECT_EQ(listener_.events, want);
}

TEST_F(WmTransactionTest, NestedRollbackKeepsOuterChanges) {
  wm_.Begin();
  WmePtr outer = Make(1);
  wm_.Begin();
  Make(2);
  ASSERT_TRUE(wm_.Remove(outer->time_tag()).ok());
  wm_.Rollback();  // undoes only the inner transaction
  EXPECT_NE(wm_.Find(outer->time_tag()), nullptr);
  ASSERT_TRUE(wm_.Commit().ok());
  std::vector<std::string> want = {"[1",
                                   "+" + std::to_string(outer->time_tag()),
                                   "]"};
  EXPECT_EQ(listener_.events, want);
}

TEST_F(WmTransactionTest, ReplaceStagesALinkedDeltaPair) {
  WmePtr old = Make(1);
  listener_.events.clear();
  wm_.Begin();
  auto r = wm_.Replace(old->time_tag(), {Value::Int(2)});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(wm_.Commit().ok());
  std::vector<std::string> want = {"[2", "-" + std::to_string(old->time_tag()),
                                   "+" + std::to_string((*r)->time_tag()),
                                   "]"};
  EXPECT_EQ(listener_.events, want);
}

TEST_F(WmTransactionTest, CommitWithoutBeginFails) {
  EXPECT_FALSE(wm_.Commit().ok());
}

// --- RHS all-or-nothing regressions -------------------------------------

/// Dumps the WM plus the next time tag: equal dumps + equal counters means
/// the rolled-back firing left no trace at all.
std::string WmFingerprint(Engine& engine) {
  std::ostringstream out;
  engine.DumpWm(out);
  out << "next=" << engine.wm().next_time_tag();
  return out.str();
}

constexpr std::string_view kItemSchema = "(literalize item id score)";

TEST(RhsRollbackTest, ModifyFailingOnKthMemberRollsBackWholeFiring) {
  // The foreach modifies each member in turn; the member whose score is a
  // symbol makes `(<s> + 1)` error mid-firing, after earlier members were
  // already modified. The whole firing must roll back.
  Engine engine;
  std::ostringstream devnull;
  engine.set_output(&devnull);
  MustLoad(engine, std::string(kItemSchema) +
                       "(p bump { [item ^score <s>] <P> }"
                       " :test ((count <P>) >= 3) -->"
                       " (foreach <P> ascending"
                       "   (modify <P> ^score (<s> + 1))))");
  MustMake(engine, "item", {{"id", Value::Int(1)}, {"score", Value::Int(10)}});
  MustMake(engine, "item",
           {{"id", Value::Int(2)}, {"score", engine.Sym("poison")}});
  MustMake(engine, "item", {{"id", Value::Int(3)}, {"score", Value::Int(30)}});
  std::string before = WmFingerprint(engine);
  auto r = engine.Run(10);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("non-numeric"), std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(WmFingerprint(engine), before);
  EXPECT_GT(engine.wm().stats().rollbacks, 0u);
}

TEST(RhsRollbackTest, SetModifyFollowedByErrorRollsBack) {
  Engine engine;
  std::ostringstream devnull;
  engine.set_output(&devnull);
  MustLoad(engine, std::string(kItemSchema) +
                       "(p zero { [item ^id <i> ^score <s>] <P> }"
                       " :test ((sum <s>) > 0) -->"
                       " (set-modify <P> ^score 0)"
                       " (bind <x> (1 / 0)))");
  MustMake(engine, "item", {{"id", Value::Int(1)}, {"score", Value::Int(5)}});
  MustMake(engine, "item", {{"id", Value::Int(2)}, {"score", Value::Int(6)}});
  std::string before = WmFingerprint(engine);
  ASSERT_FALSE(engine.Run(10).ok());
  EXPECT_EQ(WmFingerprint(engine), before);
}

TEST(RhsRollbackTest, SetRemoveFollowedByErrorRollsBack) {
  Engine engine;
  std::ostringstream devnull;
  engine.set_output(&devnull);
  MustLoad(engine, std::string(kItemSchema) +
                       "(p purge { [item ^id <i>] <P> }"
                       " :test ((count <P>) >= 2) -->"
                       " (set-remove <P>)"
                       " (bind <x> (1 / 0)))");
  MustMake(engine, "item", {{"id", Value::Int(1)}});
  MustMake(engine, "item", {{"id", Value::Int(2)}});
  std::string before = WmFingerprint(engine);
  ASSERT_FALSE(engine.Run(10).ok());
  EXPECT_EQ(WmFingerprint(engine), before);
  // The matchers never saw the rolled-back removals: the SOI is intact and
  // still holds both members.
  SNode* snode = engine.snode("purge");
  ASSERT_NE(snode, nullptr);
  EXPECT_EQ(snode->num_sois(), 1u);
}

// --- parallel RHS: bit-identical behavior, error paths included ----------

/// Everything observable from one capped run of `rule` over items with the
/// given scores, under sequential or parallel RHS execution.
struct RhsOutcome {
  std::string status;  // "" = Run succeeded
  std::string before, after;  // WmFingerprint around the run
  uint64_t rollbacks = 0;
  uint64_t skipped_dead = 0;
  uint64_t parallel_forks = 0;
  uint64_t parallel_member_tasks = 0;
};

RhsOutcome RunRhs(const std::string& rule, const std::vector<int64_t>& scores,
                  bool parallel) {
  EngineOptions opts;
  opts.parallel_rhs = parallel;
  Engine engine(opts);
  std::ostringstream devnull;
  engine.set_output(&devnull);
  MustLoad(engine, std::string(kItemSchema) + rule);
  int64_t id = 1;
  for (int64_t s : scores) {
    MustMake(engine, "item",
             {{"id", Value::Int(id++)}, {"score", Value::Int(s)}});
  }
  RhsOutcome o;
  o.before = WmFingerprint(engine);
  auto r = engine.Run(10);
  o.status = r.ok() ? "" : r.status().ToString();
  o.after = WmFingerprint(engine);
  o.rollbacks = engine.wm().stats().rollbacks;
  o.skipped_dead = engine.rhs_stats().skipped_dead_targets;
  o.parallel_forks = engine.rhs_stats().parallel_forks;
  o.parallel_member_tasks = engine.rhs_stats().parallel_member_tasks;
  return o;
}

TEST(ParallelRhsTest, ForeachKthMemberErrorMatchesSequential) {
  // Member 2 (score 0) makes `(10 / <s>)` divide by zero after member 1
  // was already modified: the whole firing must roll back, with the same
  // Status text, in both execution modes.
  const std::string rule =
      "(p bump { [item ^score <s>] <P> } :test ((count <P>) >= 3) -->"
      " (foreach <P> ascending (modify <P> ^score (10 / <s>))))";
  RhsOutcome seq = RunRhs(rule, {5, 0, 2}, false);
  RhsOutcome par = RunRhs(rule, {5, 0, 2}, true);
  ASSERT_NE(seq.status, "");
  EXPECT_NE(seq.status.find("zero"), std::string::npos) << seq.status;
  EXPECT_EQ(par.status, seq.status);
  EXPECT_EQ(seq.after, seq.before);
  EXPECT_EQ(par.after, par.before);
  EXPECT_GT(seq.rollbacks, 0u);
  EXPECT_GT(par.rollbacks, 0u);
  EXPECT_EQ(seq.parallel_forks, 0u);
  EXPECT_GT(par.parallel_forks, 0u);
}

TEST(ParallelRhsTest, SetModifyMemberErrorMatchesSequential) {
  // The set-modify expression errors identically for every member; the
  // sequential path surfaces it on member 1 inside the action's single
  // transaction — the parallel path must return the same Status and leave
  // the same (untouched) WM.
  const std::string rule =
      "(p zero { [item ^score <s>] <P> } :test ((sum <s>) > 0) -->"
      " (set-modify <P> ^score ((sum <s>) / 0)))";
  RhsOutcome seq = RunRhs(rule, {5, 6}, false);
  RhsOutcome par = RunRhs(rule, {5, 6}, true);
  ASSERT_NE(seq.status, "");
  EXPECT_NE(seq.status.find("zero"), std::string::npos) << seq.status;
  EXPECT_EQ(par.status, seq.status);
  EXPECT_EQ(seq.after, seq.before);
  EXPECT_EQ(par.after, par.before);
  EXPECT_GT(par.parallel_forks, 0u);
}

TEST(ParallelRhsTest, DeadTargetSkipOrderMatchesSequential) {
  // Each member's body removes the member and then modifies it: the modify
  // must hit the dead-target skip (not an error), exactly as sequentially —
  // the parallel path checks liveness at apply time, after the removal.
  const std::string rule =
      "(p drain { [item ^score <s>] <P> } :test ((count <P>) >= 3) -->"
      " (foreach <P> ascending (remove <P>) (modify <P> ^score 9)))";
  RhsOutcome seq = RunRhs(rule, {1, 2, 3}, false);
  RhsOutcome par = RunRhs(rule, {1, 2, 3}, true);
  EXPECT_EQ(seq.status, "");
  EXPECT_EQ(par.status, "");
  EXPECT_EQ(par.after, seq.after);
  EXPECT_EQ(seq.skipped_dead, 3u);
  EXPECT_EQ(par.skipped_dead, 3u);
  EXPECT_GT(par.parallel_forks, 0u);
  EXPECT_EQ(par.parallel_member_tasks, 3u);
}

TEST(ParallelRhsTest, SuccessfulParallelRunIsBitIdentical) {
  const std::string rule =
      "(p bump { [item ^score <s>] <P> } :test ((count <P>) >= 3) -->"
      " (foreach <P> descending (modify <P> ^score (<s> + 1))))";
  RhsOutcome seq = RunRhs(rule, {1, 2, 3}, false);
  RhsOutcome par = RunRhs(rule, {1, 2, 3}, true);
  EXPECT_EQ(par.status, seq.status);
  EXPECT_EQ(par.after, seq.after);
  EXPECT_EQ(seq.parallel_forks, 0u);
  EXPECT_GT(par.parallel_forks, 0u);
  EXPECT_EQ(par.parallel_member_tasks % 3, 0u);
}

TEST(RhsRollbackTest, SuccessfulFiringStillCommitsAsOneBatch) {
  Engine engine;
  std::ostringstream devnull;
  engine.set_output(&devnull);
  MustLoad(engine, std::string(kItemSchema) +
                       "(p zero { [item ^score <s>] <P> }"
                       " :test ((sum <s>) > 0) -->"
                       " (set-modify <P> ^score 0))");
  MustMake(engine, "item", {{"id", Value::Int(1)}, {"score", Value::Int(5)}});
  MustMake(engine, "item", {{"id", Value::Int(2)}, {"score", Value::Int(6)}});
  ASSERT_EQ(MustRun(engine, 10), 1);
  // One firing = one committed batch carrying both modify delta pairs.
  EXPECT_EQ(engine.wm().stats().batches, 1u);
  EXPECT_EQ(engine.wm().stats().batched_changes, 4u);
  for (const WmePtr& w : engine.wm().Snapshot()) {
    EXPECT_EQ(w->field(1), Value::Int(0));
  }
}

}  // namespace
}  // namespace sorel
