// Rete network internals: alpha sharing, token lifecycle, tree deletion,
// negative nodes, and the duplicate-token pitfall.

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace sorel {
namespace {

class ReteTest : public ::testing::Test {
 protected:
  ReteTest() { engine_.set_output(&out_); }

  std::ostringstream out_;
  Engine engine_;
};

TEST_F(ReteTest, AlphaMemorySharedAcrossRules) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r1 (player ^team A) --> (halt))"
                        "(p r2 (player ^team A) (player ^team B) --> (halt))"
                        "(p r3 (player ^team B) --> (halt))");
  // Distinct alpha tests: {team A}, {team B} -> exactly two memories even
  // though four CEs reference them (the Rete sharing the paper keeps, §5).
  EXPECT_EQ(engine_.rete_matcher()->num_alpha_memories(), 2u);
  EXPECT_EQ(engine_.rete_matcher()->num_beta_nodes(), 4u);
}

TEST_F(ReteTest, TokensCountCrossProduct) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p c (player ^team A) (player ^team B) --> (halt))");
  MakeFigure1Wm(engine_);
  // Tokens: 2 at level 1 (A players) + 6 at level 2.
  EXPECT_EQ(engine_.rete_matcher()->live_tokens(), 8u);
}

TEST_F(ReteTest, RemovalDeletesTokenSubtrees) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p c (player ^team A) (player ^team B) --> (halt))");
  MakeFigure1Wm(engine_);
  ASSERT_TRUE(engine_.RemoveWme(1).ok());  // one A player: kills 1 + 3 tokens
  EXPECT_EQ(engine_.rete_matcher()->live_tokens(), 4u);
  EXPECT_EQ(engine_.conflict_set().size(), 3u);
  ASSERT_TRUE(engine_.RemoveWme(3).ok());
  ASSERT_TRUE(engine_.RemoveWme(4).ok());
  ASSERT_TRUE(engine_.RemoveWme(5).ok());
  EXPECT_EQ(engine_.rete_matcher()->live_tokens(), 1u);  // just [Janice]
  EXPECT_EQ(engine_.conflict_set().size(), 0u);
}

TEST_F(ReteTest, EmptyWmLeavesNoTokens) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p c (player ^name <n>) (player ^name <n> ^team B)"
                        " - (player ^team C) --> (halt))");
  MakeFigure1Wm(engine_);
  for (TimeTag t = 1; t <= 5; ++t) ASSERT_TRUE(engine_.RemoveWme(t).ok());
  EXPECT_EQ(engine_.rete_matcher()->live_tokens(), 0u);
  EXPECT_EQ(engine_.conflict_set().size(), 0u);
  EXPECT_EQ(engine_.wm().size(), 0u);
}

TEST_F(ReteTest, OneWmeMatchingTwoCesProducesEachTokenOnce) {
  // The classic duplicate-token pitfall: both CEs share one alpha memory.
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p twin (player ^name <a>) (player ^name <b>)"
                        " --> (halt))");
  MustMake(engine_, "player", {{"name", engine_.Sym("solo")}});
  // One WME, two CEs: exactly one instantiation (solo, solo).
  EXPECT_EQ(engine_.conflict_set().size(), 1u);
  MustMake(engine_, "player", {{"name", engine_.Sym("duo")}});
  // Two WMEs: 2x2 instantiations, each exactly once.
  EXPECT_EQ(engine_.conflict_set().size(), 4u);
}

TEST_F(ReteTest, SelfJoinOnSameWme) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p same (player ^name <n>) (player ^name <n>)"
                        " --> (halt))");
  MustMake(engine_, "player", {{"name", engine_.Sym("x")}});
  MustMake(engine_, "player", {{"name", engine_.Sym("x")}});
  MustMake(engine_, "player", {{"name", engine_.Sym("y")}});
  // x-pairs: 2x2, y-pairs: 1 => 5 instantiations.
  EXPECT_EQ(engine_.conflict_set().size(), 5u);
}

TEST_F(ReteTest, NegativeNodeBetweenJoins) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(literalize flag team)"
                        "(p r (player ^name <n> ^team <t>)"
                        "     - (flag ^team <t>)"
                        "     (player ^name <n> ^team B)"
                        " --> (write <n> <t> (crlf)))");
  MakeFigure1Wm(engine_);
  // Jack appears on A and B; Sue only B (twice); Janice only A.
  // Pairs (first CE, third CE) with same name: Jack(A)-Jack(B),
  // Jack(B)-Jack(B), Sue(3)-Sue(3/5), Sue(5)-Sue(3/5).
  size_t base = engine_.conflict_set().size();
  EXPECT_EQ(base, 6u);
  TimeTag flag = MustMake(engine_, "flag", {{"team", engine_.Sym("A")}});
  // Blocks only the first-CE-team-A instantiation (Jack A).
  EXPECT_EQ(engine_.conflict_set().size(), 5u);
  ASSERT_TRUE(engine_.RemoveWme(flag).ok());
  EXPECT_EQ(engine_.conflict_set().size(), 6u);
}

TEST_F(ReteTest, NegatedCeWithLocalVariable) {
  // A variable bound only inside the negated CE is existential.
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p no-b-players (player ^team A ^name <n>)"
                        " - (player ^team B ^name <x>) --> (write <n>))");
  MustMake(engine_, "player", {{"name", engine_.Sym("Ann")},
                               {"team", engine_.Sym("A")}});
  EXPECT_EQ(engine_.conflict_set().size(), 1u);
  MustMake(engine_, "player", {{"name", engine_.Sym("Bob")},
                               {"team", engine_.Sym("B")}});
  EXPECT_EQ(engine_.conflict_set().size(), 0u);
}

TEST_F(ReteTest, WmesAddedBeforeRule) {
  MustLoad(engine_, std::string(kPlayerSchema));
  MakeFigure1Wm(engine_);
  MustLoad(engine_, "(p c (player ^team A) (player ^team B) --> (halt))");
  EXPECT_EQ(engine_.conflict_set().size(), 6u);
  EXPECT_EQ(engine_.rete_matcher()->live_tokens(), 8u);
}

TEST_F(ReteTest, SecondRuleAddedWithLiveTokensSharesAlpha) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r1 (player ^team A) --> (halt))");
  MakeFigure1Wm(engine_);
  MustLoad(engine_, "(p r2 (player ^team A) - (player ^team C) --> (halt))");
  EXPECT_EQ(engine_.conflict_set().size(), 4u);  // 2 for r1, 2 for r2
  MustLoad(engine_, "(p r3 (player ^team A) (player ^team B) --> (halt))");
  EXPECT_EQ(engine_.conflict_set().size(), 10u);
}

}  // namespace
}  // namespace sorel
