// Rete network internals: alpha sharing, token lifecycle, tree deletion,
// negative nodes, and the duplicate-token pitfall.

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace sorel {
namespace {

class ReteTest : public ::testing::Test {
 protected:
  ReteTest() { engine_.set_output(&out_); }

  std::ostringstream out_;
  Engine engine_;
};

TEST_F(ReteTest, AlphaMemorySharedAcrossRules) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r1 (player ^team A) --> (halt))"
                        "(p r2 (player ^team A) (player ^team B) --> (halt))"
                        "(p r3 (player ^team B) --> (halt))");
  // Distinct alpha tests: {team A}, {team B} -> exactly two memories even
  // though four CEs reference them (the Rete sharing the paper keeps, §5).
  EXPECT_EQ(engine_.rete_matcher()->num_alpha_memories(), 2u);
  EXPECT_EQ(engine_.rete_matcher()->num_beta_nodes(), 4u);
}

TEST_F(ReteTest, TokensCountCrossProduct) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p c (player ^team A) (player ^team B) --> (halt))");
  MakeFigure1Wm(engine_);
  // Tokens: 2 at level 1 (A players) + 6 at level 2.
  EXPECT_EQ(engine_.rete_matcher()->live_tokens(), 8u);
}

TEST_F(ReteTest, RemovalDeletesTokenSubtrees) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p c (player ^team A) (player ^team B) --> (halt))");
  MakeFigure1Wm(engine_);
  ASSERT_TRUE(engine_.RemoveWme(1).ok());  // one A player: kills 1 + 3 tokens
  EXPECT_EQ(engine_.rete_matcher()->live_tokens(), 4u);
  EXPECT_EQ(engine_.conflict_set().size(), 3u);
  ASSERT_TRUE(engine_.RemoveWme(3).ok());
  ASSERT_TRUE(engine_.RemoveWme(4).ok());
  ASSERT_TRUE(engine_.RemoveWme(5).ok());
  EXPECT_EQ(engine_.rete_matcher()->live_tokens(), 1u);  // just [Janice]
  EXPECT_EQ(engine_.conflict_set().size(), 0u);
}

TEST_F(ReteTest, EmptyWmLeavesNoTokens) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p c (player ^name <n>) (player ^name <n> ^team B)"
                        " - (player ^team C) --> (halt))");
  MakeFigure1Wm(engine_);
  for (TimeTag t = 1; t <= 5; ++t) ASSERT_TRUE(engine_.RemoveWme(t).ok());
  EXPECT_EQ(engine_.rete_matcher()->live_tokens(), 0u);
  EXPECT_EQ(engine_.conflict_set().size(), 0u);
  EXPECT_EQ(engine_.wm().size(), 0u);
}

TEST_F(ReteTest, OneWmeMatchingTwoCesProducesEachTokenOnce) {
  // The classic duplicate-token pitfall: both CEs share one alpha memory.
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p twin (player ^name <a>) (player ^name <b>)"
                        " --> (halt))");
  MustMake(engine_, "player", {{"name", engine_.Sym("solo")}});
  // One WME, two CEs: exactly one instantiation (solo, solo).
  EXPECT_EQ(engine_.conflict_set().size(), 1u);
  MustMake(engine_, "player", {{"name", engine_.Sym("duo")}});
  // Two WMEs: 2x2 instantiations, each exactly once.
  EXPECT_EQ(engine_.conflict_set().size(), 4u);
}

TEST_F(ReteTest, SelfJoinOnSameWme) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p same (player ^name <n>) (player ^name <n>)"
                        " --> (halt))");
  MustMake(engine_, "player", {{"name", engine_.Sym("x")}});
  MustMake(engine_, "player", {{"name", engine_.Sym("x")}});
  MustMake(engine_, "player", {{"name", engine_.Sym("y")}});
  // x-pairs: 2x2, y-pairs: 1 => 5 instantiations.
  EXPECT_EQ(engine_.conflict_set().size(), 5u);
}

TEST_F(ReteTest, NegativeNodeBetweenJoins) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(literalize flag team)"
                        "(p r (player ^name <n> ^team <t>)"
                        "     - (flag ^team <t>)"
                        "     (player ^name <n> ^team B)"
                        " --> (write <n> <t> (crlf)))");
  MakeFigure1Wm(engine_);
  // Jack appears on A and B; Sue only B (twice); Janice only A.
  // Pairs (first CE, third CE) with same name: Jack(A)-Jack(B),
  // Jack(B)-Jack(B), Sue(3)-Sue(3/5), Sue(5)-Sue(3/5).
  size_t base = engine_.conflict_set().size();
  EXPECT_EQ(base, 6u);
  TimeTag flag = MustMake(engine_, "flag", {{"team", engine_.Sym("A")}});
  // Blocks only the first-CE-team-A instantiation (Jack A).
  EXPECT_EQ(engine_.conflict_set().size(), 5u);
  ASSERT_TRUE(engine_.RemoveWme(flag).ok());
  EXPECT_EQ(engine_.conflict_set().size(), 6u);
}

TEST_F(ReteTest, NegatedCeWithLocalVariable) {
  // A variable bound only inside the negated CE is existential.
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p no-b-players (player ^team A ^name <n>)"
                        " - (player ^team B ^name <x>) --> (write <n>))");
  MustMake(engine_, "player", {{"name", engine_.Sym("Ann")},
                               {"team", engine_.Sym("A")}});
  EXPECT_EQ(engine_.conflict_set().size(), 1u);
  MustMake(engine_, "player", {{"name", engine_.Sym("Bob")},
                               {"team", engine_.Sym("B")}});
  EXPECT_EQ(engine_.conflict_set().size(), 0u);
}

TEST_F(ReteTest, WmesAddedBeforeRule) {
  MustLoad(engine_, std::string(kPlayerSchema));
  MakeFigure1Wm(engine_);
  MustLoad(engine_, "(p c (player ^team A) (player ^team B) --> (halt))");
  EXPECT_EQ(engine_.conflict_set().size(), 6u);
  EXPECT_EQ(engine_.rete_matcher()->live_tokens(), 8u);
}

TEST_F(ReteTest, SecondRuleAddedWithLiveTokensSharesAlpha) {
  MustLoad(engine_, std::string(kPlayerSchema) +
                        "(p r1 (player ^team A) --> (halt))");
  MakeFigure1Wm(engine_);
  MustLoad(engine_, "(p r2 (player ^team A) - (player ^team C) --> (halt))");
  EXPECT_EQ(engine_.conflict_set().size(), 4u);  // 2 for r1, 2 for r2
  MustLoad(engine_, "(p r3 (player ^team A) (player ^team B) --> (halt))");
  EXPECT_EQ(engine_.conflict_set().size(), 10u);
}

// --- indexed join memories ---------------------------------------------

/// Runs the same program/workload on an indexed and a linear-scan matcher.
class IndexedReteTest : public ::testing::Test {
 protected:
  IndexedReteTest() : linear_(LinearOptions()) {
    indexed_.set_output(&out_);
    linear_.set_output(&out_);
  }

  static EngineOptions LinearOptions() {
    EngineOptions options;
    options.rete.use_indexed_joins = false;
    return options;
  }

  void LoadBoth(const std::string& src) {
    MustLoad(indexed_, src);
    MustLoad(linear_, src);
  }

  void MakeBoth(std::string_view cls,
                const std::vector<std::pair<std::string, Value>>& values) {
    MustMake(indexed_, cls, values);
    MustMake(linear_, cls, values);
  }

  void ExpectAgree() {
    EXPECT_EQ(indexed_.conflict_set().size(), linear_.conflict_set().size());
    EXPECT_EQ(indexed_.rete_matcher()->live_tokens(),
              linear_.rete_matcher()->live_tokens());
  }

  std::ostringstream out_;
  Engine indexed_;  // default options: indexed joins on
  Engine linear_;
};

TEST_F(IndexedReteTest, EqJoinProbesBucketsNotWholeMemory) {
  LoadBoth(std::string(kPlayerSchema) +
           "(p pair (player ^name <n> ^team A) (player ^name <n> ^team B)"
           " --> (halt))");
  for (int i = 0; i < 20; ++i) {
    std::string name = "p" + std::to_string(i);
    MakeBoth("player", {{"name", indexed_.Sym(name)},
                        {"team", indexed_.Sym("A")}});
    MakeBoth("player", {{"name", indexed_.Sym(name)},
                        {"team", indexed_.Sym("B")}});
  }
  ExpectAgree();
  EXPECT_EQ(indexed_.conflict_set().size(), 20u);
  const ReteStats& fast = indexed_.rete_matcher()->stats();
  const ReteStats& slow = linear_.rete_matcher()->stats();
  EXPECT_GT(fast.index_probes, 0u);
  EXPECT_EQ(slow.index_probes, 0u);
  // Unique names: each probe hits a one-element bucket while the scan walks
  // the whole B memory, so the indexed path does far fewer pair tests.
  EXPECT_LT(fast.join_attempts * 4, slow.join_attempts);
  EXPECT_EQ(fast.tokens_created, slow.tokens_created);
}

TEST_F(IndexedReteTest, RemovalsKeepIndexesInSync) {
  LoadBoth(std::string(kPlayerSchema) +
           "(p same (player ^name <n>) (player ^name <n>) --> (halt))");
  std::vector<TimeTag> tags;
  for (int i = 0; i < 6; ++i) {
    std::string name = "n" + std::to_string(i % 3);
    tags.push_back(MustMake(indexed_, "player",
                            {{"name", indexed_.Sym(name)}}));
    MustMake(linear_, "player", {{"name", linear_.Sym(name)}});
  }
  ExpectAgree();
  // Remove every other WME; buckets must shrink with the alpha memory.
  for (size_t i = 0; i < tags.size(); i += 2) {
    ASSERT_TRUE(indexed_.RemoveWme(tags[i]).ok());
    ASSERT_TRUE(linear_.RemoveWme(tags[i]).ok());
    ExpectAgree();
  }
  EXPECT_EQ(indexed_.conflict_set().size(), 3u);  // 3 distinct names left
}

TEST_F(IndexedReteTest, RuleAddedAfterWmesSeedsIndexFromMemory) {
  LoadBoth(std::string(kPlayerSchema));
  MakeFigure1Wm(indexed_);
  MakeFigure1Wm(linear_);
  // GetOrCreateIndex must backfill from the already-populated memory.
  LoadBoth("(p pair (player ^team A ^name <n>) (player ^team B ^name <n>)"
           " --> (halt))");
  ExpectAgree();
  EXPECT_EQ(indexed_.conflict_set().size(), 1u);  // Jack A - Jack B
  std::ostringstream dump;
  indexed_.rete_matcher()->DumpNetwork(dump, indexed_.symbols());
  EXPECT_NE(dump.str().find("join*"), std::string::npos) << dump.str();
}

TEST_F(IndexedReteTest, CrossKindNumericKeysShareABucket) {
  // 5 == 5.0 under EvalTestPred(kEq); the hash index must agree (Value
  // hashing is ==-compatible), or the float row would silently drop out.
  LoadBoth("(literalize reading sensor level)"
           "(p match (reading ^sensor a ^level <l>)"
           "         (reading ^sensor b ^level <l>) --> (halt))");
  MakeBoth("reading", {{"sensor", indexed_.Sym("a")},
                       {"level", Value::Int(5)}});
  MakeBoth("reading", {{"sensor", indexed_.Sym("b")},
                       {"level", Value::Float(5.0)}});
  ExpectAgree();
  EXPECT_EQ(indexed_.conflict_set().size(), 1u);
}

TEST_F(IndexedReteTest, NegatedCeChurnKeepsBlockerCountsExact) {
  // Satellite for the blocker-count underflow guard: hammer an indexed
  // negative node with blocker add/remove cycles and assert the propagation
  // state stays exact (an underflow would wrap a token into a permanently
  // blocked — or permanently propagated — state).
  LoadBoth(std::string(kPlayerSchema) +
           "(literalize flag team)"
           "(p lonely (player ^team <t>) - (flag ^team <t>) --> (halt))");
  MakeBoth("player", {{"team", indexed_.Sym("A")}});
  MakeBoth("player", {{"team", indexed_.Sym("B")}});
  ExpectAgree();
  EXPECT_EQ(indexed_.conflict_set().size(), 2u);
  for (int round = 0; round < 10; ++round) {
    TimeTag fa = MustMake(indexed_, "flag", {{"team", indexed_.Sym("A")}});
    TimeTag la = MustMake(linear_, "flag", {{"team", linear_.Sym("A")}});
    ExpectAgree();
    EXPECT_EQ(indexed_.conflict_set().size(), 1u);  // A blocked
    // Pile on a second, equal blocker; count 2, still blocked.
    TimeTag fa2 = MustMake(indexed_, "flag", {{"team", indexed_.Sym("A")}});
    TimeTag la2 = MustMake(linear_, "flag", {{"team", linear_.Sym("A")}});
    EXPECT_EQ(indexed_.conflict_set().size(), 1u);
    ASSERT_TRUE(indexed_.RemoveWme(fa).ok());
    ASSERT_TRUE(linear_.RemoveWme(la).ok());
    EXPECT_EQ(indexed_.conflict_set().size(), 1u);  // one blocker left
    ASSERT_TRUE(indexed_.RemoveWme(fa2).ok());
    ASSERT_TRUE(linear_.RemoveWme(la2).ok());
    ExpectAgree();
    EXPECT_EQ(indexed_.conflict_set().size(), 2u);  // unblocked again
  }
}

}  // namespace
}  // namespace sorel
