// CompiledRuleBase tests: the split between the immutable compiled
// artifact (rules, startup, schemas, network topology) and per-engine
// match state. The core claim is bit-identity — an engine bound to a
// shared base must be observably indistinguishable from one that compiled
// the same source privately — plus structural sharing: N bound engines
// hold one base, one rule vector, one topology.

#include "lang/rule_base.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace sorel {
namespace {

constexpr char kRules[] = R"(
(literalize item id cat val)
(literalize bin cat total)
(p pair (item ^cat <c> ^val <v>)
        (item ^cat <c> ^val > <v>)
        --> (make bin ^cat <c> ^total <v>))
(p cleanup (bin ^total > 100) --> (remove 1))
(startup (make item ^id 1 ^cat A ^val 3))
)";

constexpr char kSetRules[] = R"(
(literalize reading sensor val)
(p group-big { [reading ^sensor <s>] <G> }
   :scalar (<s>)
   :test ((count <G>) > 2)
   --> (write big <s>))
)";

/// Everything observable about an engine after a scripted run, captured
/// as comparable values.
struct Observed {
  std::string dump;
  std::string output;
  TimeTag next_tag = 0;
  std::map<std::string, uint64_t> counters;
  int fired = 0;

  bool operator==(const Observed& other) const {
    return dump == other.dump && output == other.output &&
           next_tag == other.next_tag && counters == other.counters &&
           fired == other.fired;
  }
};

/// Drives one engine through a deterministic workload and captures the
/// observable result. The workload exercises adds, a run, and a removal.
Observed Drive(Engine* engine, std::ostringstream* out) {
  Observed seen;
  auto t1 = engine->MakeWme("item", {{"id", Value::Int(2)},
                                     {"cat", engine->Sym("A")},
                                     {"val", Value::Int(7)}});
  EXPECT_TRUE(t1.ok()) << t1.status().ToString();
  auto t2 = engine->MakeWme("item", {{"id", Value::Int(3)},
                                     {"cat", engine->Sym("B")},
                                     {"val", Value::Int(5)}});
  EXPECT_TRUE(t2.ok()) << t2.status().ToString();
  Result<int> fired = engine->Run(10);
  EXPECT_TRUE(fired.ok()) << fired.status().ToString();
  seen.fired = fired.ok() ? *fired : -1;
  EXPECT_TRUE(engine->RemoveWme(*t2).ok());
  std::ostringstream dump;
  engine->DumpWm(dump);
  seen.dump = dump.str();
  seen.output = out->str();
  seen.next_tag = engine->wm().next_time_tag();
  seen.counters = engine->metrics().SnapshotCounters();
  return seen;
}

Observed RunSelfCompiled(MatcherKind matcher, const char* source) {
  EngineOptions options;
  options.matcher = matcher;
  options.trace_firings = true;
  Engine engine(options);
  std::ostringstream out;
  engine.set_output(&out);
  Status loaded = engine.LoadString(source);
  EXPECT_TRUE(loaded.ok()) << loaded.ToString();
  return Drive(&engine, &out);
}

Observed RunBound(MatcherKind matcher, const RuleBasePtr& base) {
  EngineOptions options;
  options.matcher = matcher;
  options.trace_firings = true;
  Engine engine(options, base);
  EXPECT_TRUE(engine.bind_status().ok()) << engine.bind_status().ToString();
  std::ostringstream out;
  engine.set_output(&out);
  return Drive(&engine, &out);
}

TEST(RuleBaseTest, CompileExposesRulesStartupAndTopology) {
  auto base = CompiledRuleBase::Compile(kRules);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ((*base)->rules().size(), 2u);
  EXPECT_NE((*base)->FindRule("pair"), nullptr);
  EXPECT_NE((*base)->FindRule("cleanup"), nullptr);
  EXPECT_EQ((*base)->FindRule("nope"), nullptr);
  EXPECT_FALSE((*base)->startup().empty());
  EXPECT_GT((*base)->MemoryBytes(), 0u);
  // `pair`'s two item CEs carry only cross-CE join tests, so they share
  // one bare `item` alpha pattern; cleanup's `bin ^total > 100` is the
  // second.
  EXPECT_EQ((*base)->topology().num_patterns(), 2u);
}

TEST(RuleBaseTest, TopologySharesEqualAlphaPatterns) {
  // Two rules with a structurally identical first CE share one pattern —
  // the same dedup an unbound Rete network performs on alpha memories.
  auto base = CompiledRuleBase::Compile(R"(
(literalize m a b)
(p r1 (m ^a 1) --> (halt))
(p r2 (m ^a 1) (m ^b 2) --> (halt))
)");
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ((*base)->topology().num_patterns(), 2u);
  const auto* r1 = (*base)->topology().PatternsFor((*base)->FindRule("r1"));
  const auto* r2 = (*base)->topology().PatternsFor((*base)->FindRule("r2"));
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ((*r1)[0], (*r2)[0]);
}

TEST(RuleBaseTest, FingerprintIsStableAndDiscriminating) {
  RuleBaseConfig config;
  uint64_t a = CompiledRuleBase::Fingerprint(kRules, config);
  uint64_t b = CompiledRuleBase::Fingerprint(kRules, config);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, CompiledRuleBase::Fingerprint(kSetRules, config));
  RuleBaseConfig reordered;
  reordered.join_order = JoinOrder::kOptimized;
  reordered.reorder_at_load = true;
  EXPECT_NE(a, CompiledRuleBase::Fingerprint(kRules, reordered));

  auto base = CompiledRuleBase::Compile(kRules, config);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ((*base)->fingerprint(), a);
}

TEST(RuleBaseTest, CompileErrorsSurface) {
  EXPECT_FALSE(CompiledRuleBase::Compile("(p broken").ok());
  EXPECT_FALSE(CompiledRuleBase::Compile(R"(
(literalize m a)
(p dup [m ^a 1] --> (halt))
(p dup [m ^a 2] --> (halt))
)").ok());
}

TEST(RuleBaseTest, BoundEngineIsBitIdenticalToSelfCompiled) {
  auto base = CompiledRuleBase::Compile(kRules);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  for (MatcherKind matcher : {MatcherKind::kRete, MatcherKind::kTreat,
                              MatcherKind::kDips, MatcherKind::kPlan}) {
    Observed solo = RunSelfCompiled(matcher, kRules);
    Observed bound = RunBound(matcher, *base);
    // The shared-base gauge exists only on the bound engine; counters are
    // what must agree.
    EXPECT_EQ(solo.dump, bound.dump);
    EXPECT_EQ(solo.output, bound.output);
    EXPECT_EQ(solo.next_tag, bound.next_tag);
    EXPECT_EQ(solo.fired, bound.fired);
    EXPECT_EQ(solo.counters, bound.counters);
  }
}

TEST(RuleBaseTest, BoundSetOrientedRulesMatchSelfCompiled) {
  auto base = CompiledRuleBase::Compile(kSetRules);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  auto drive = [](Engine* engine, std::ostringstream* out) {
    for (int i = 0; i < 4; ++i) {
      auto tag = engine->MakeWme(
          "reading", {{"sensor", engine->Sym("s1")},
                      {"val", Value::Int(8 + 2 * i)}});
      EXPECT_TRUE(tag.ok());
    }
    Result<int> fired = engine->Run(10);
    EXPECT_TRUE(fired.ok());
    std::ostringstream dump;
    engine->DumpWm(dump);
    return dump.str() + "|" + out->str() +
           "|fired=" + std::to_string(fired.ok() ? *fired : -1);
  };

  Engine solo{EngineOptions{}};
  std::ostringstream solo_out;
  solo.set_output(&solo_out);
  ASSERT_TRUE(solo.LoadString(kSetRules).ok());

  Engine bound({}, *base);
  ASSERT_TRUE(bound.bind_status().ok()) << bound.bind_status().ToString();
  std::ostringstream bound_out;
  bound.set_output(&bound_out);

  EXPECT_EQ(drive(&solo, &solo_out), drive(&bound, &bound_out));
  EXPECT_NE(bound.snode("group-big"), nullptr);
}

TEST(RuleBaseTest, EnginesShareOneBaseByPointer) {
  auto base = CompiledRuleBase::Compile(kRules);
  ASSERT_TRUE(base.ok());
  long before = base->use_count();
  Engine a({}, *base);
  Engine b({}, *base);
  ASSERT_TRUE(a.bind_status().ok());
  ASSERT_TRUE(b.bind_status().ok());
  EXPECT_EQ(a.rule_base().get(), b.rule_base().get());
  EXPECT_EQ(base->use_count(), before + 2);
  // The rules themselves are the base's — not per-engine copies.
  ASSERT_EQ(a.rules().size(), b.rules().size());
  for (size_t i = 0; i < a.rules().size(); ++i) {
    EXPECT_EQ(a.rules()[i], b.rules()[i]);
    EXPECT_EQ(a.rules()[i], (*base)->rules()[i].get());
  }
  // And the rule_base_bytes gauge reports the shared artifact.
  auto gauges = a.metrics().SnapshotGauges();
  EXPECT_EQ(gauges.at("engine.rule_base_bytes"),
            static_cast<double>((*base)->MemoryBytes()));
}

TEST(RuleBaseTest, BoundEngineRefusesLoadString) {
  auto base = CompiledRuleBase::Compile(kRules);
  ASSERT_TRUE(base.ok());
  Engine engine({}, *base);
  ASSERT_TRUE(engine.bind_status().ok());
  Status loaded = engine.LoadString("(literalize extra x)");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kInvalidArgument);
}

TEST(RuleBaseTest, ExciseIsPerSession) {
  auto base = CompiledRuleBase::Compile(kRules);
  ASSERT_TRUE(base.ok());
  Engine a({}, *base);
  Engine b({}, *base);
  ASSERT_TRUE(a.ExciseRule("pair").ok());
  EXPECT_EQ(a.FindRule("pair"), nullptr);
  EXPECT_EQ(a.rules().size(), 1u);
  // The other session (and the base itself) still has the rule.
  EXPECT_NE(b.FindRule("pair"), nullptr);
  EXPECT_EQ((*base)->rules().size(), 2u);
  auto tag = b.MakeWme("item", {{"id", Value::Int(9)},
                                {"cat", b.Sym("A")},
                                {"val", Value::Int(99)}});
  ASSERT_TRUE(tag.ok());
  Result<int> fired = b.Run(10);
  ASSERT_TRUE(fired.ok());
  EXPECT_GT(*fired, 0);
}

TEST(RuleBaseTest, TreatRejectsSetRulesThroughBindStatus) {
  auto base = CompiledRuleBase::Compile(kSetRules);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EngineOptions options;
  options.matcher = MatcherKind::kTreat;
  Engine engine(options, *base);
  EXPECT_FALSE(engine.bind_status().ok());
}

TEST(RuleBaseTest, CompileTimeReorderMatchesLoadTimeReorder) {
  // A base compiled with reorder_at_load must bind into the same network
  // a fresh engine builds when LoadString reorders against an empty WM.
  RuleBaseConfig config;
  config.join_order = JoinOrder::kOptimized;
  config.reorder_at_load = true;
  auto base = CompiledRuleBase::Compile(kRules, config);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  EngineOptions options;
  options.matcher = MatcherKind::kRete;
  options.join_order = JoinOrder::kOptimized;
  options.trace_firings = true;

  Engine solo(options);
  std::ostringstream solo_out;
  solo.set_output(&solo_out);
  ASSERT_TRUE(solo.LoadString(kRules).ok());
  Observed solo_seen = Drive(&solo, &solo_out);

  Engine bound(options, *base);
  ASSERT_TRUE(bound.bind_status().ok());
  std::ostringstream bound_out;
  bound.set_output(&bound_out);
  Observed bound_seen = Drive(&bound, &bound_out);

  EXPECT_EQ(solo_seen.dump, bound_seen.dump);
  EXPECT_EQ(solo_seen.output, bound_seen.output);
  EXPECT_EQ(solo_seen.counters, bound_seen.counters);
}

}  // namespace
}  // namespace sorel
