#ifndef SOREL_TESTS_TEST_UTIL_H_
#define SOREL_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>

#include "engine/engine.h"

namespace sorel {

/// Loads source into `engine`, failing the test on error.
inline void MustLoad(Engine& engine, std::string_view src) {
  Status s = engine.LoadString(src);
  ASSERT_TRUE(s.ok()) << s.ToString();
}

/// Makes a WME, failing the test on error. Returns its time tag.
inline TimeTag MustMake(
    Engine& engine, std::string_view cls,
    const std::vector<std::pair<std::string, Value>>& values) {
  auto r = engine.MakeWme(cls, values);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : -1;
}

/// Runs to quiescence (or max), failing the test on error.
inline int MustRun(Engine& engine, int max_firings = -1) {
  auto r = engine.Run(max_firings);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : -1;
}

/// Builds the paper's Figure 1 working memory:
///   1: (player ^team A ^name Jack)    2: (player ^team A ^name Janice)
///   3: (player ^team B ^name Sue)     4: (player ^team B ^name Jack)
///   5: (player ^team B ^name Sue)
inline void MakeFigure1Wm(Engine& engine) {
  MustMake(engine, "player", {{"team", engine.Sym("A")},
                              {"name", engine.Sym("Jack")}});
  MustMake(engine, "player", {{"team", engine.Sym("A")},
                              {"name", engine.Sym("Janice")}});
  MustMake(engine, "player", {{"team", engine.Sym("B")},
                              {"name", engine.Sym("Sue")}});
  MustMake(engine, "player", {{"team", engine.Sym("B")},
                              {"name", engine.Sym("Jack")}});
  MustMake(engine, "player", {{"team", engine.Sym("B")},
                              {"name", engine.Sym("Sue")}});
}

inline constexpr std::string_view kPlayerSchema =
    "(literalize player name team)";

}  // namespace sorel

#endif  // SOREL_TESTS_TEST_UTIL_H_
