#include <gtest/gtest.h>

#include "rdb/ops.h"
#include "rdb/relation.h"

namespace sorel {
namespace rdb {
namespace {

class RdbTest : public ::testing::Test {
 protected:
  RdbTest() {
    a_ = Value::Symbol(symbols_.Intern("a"));
    b_ = Value::Symbol(symbols_.Intern("b"));
    c_ = Value::Symbol(symbols_.Intern("c"));
  }

  Relation MakeRel(std::vector<std::string> cols, std::vector<Tuple> rows) {
    Relation rel{RelSchema(std::move(cols))};
    for (Tuple& row : rows) EXPECT_TRUE(rel.Insert(std::move(row)).ok());
    return rel;
  }

  SymbolTable symbols_;
  Value a_, b_, c_;
};

TEST_F(RdbTest, InsertArityChecked) {
  Relation rel{RelSchema({"x", "y"})};
  EXPECT_TRUE(rel.Insert({Value::Int(1), Value::Int(2)}).ok());
  EXPECT_FALSE(rel.Insert({Value::Int(1)}).ok());
  EXPECT_EQ(rel.size(), 1u);
}

TEST_F(RdbTest, SchemaIndexOf) {
  RelSchema s({"x", "y"});
  EXPECT_EQ(s.IndexOf("x"), 0);
  EXPECT_EQ(s.IndexOf("y"), 1);
  EXPECT_EQ(s.IndexOf("z"), -1);
}

TEST_F(RdbTest, SelectWhere) {
  Relation rel = MakeRel({"x", "v"}, {{a_, Value::Int(1)},
                                      {b_, Value::Int(5)},
                                      {c_, Value::Int(9)}});
  auto out = SelectWhere(rel, "v", TestPred::kGt, Value::Int(3));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  EXPECT_FALSE(SelectWhere(rel, "ghost", TestPred::kEq, a_).ok());
}

TEST_F(RdbTest, ProjectReordersColumns) {
  Relation rel = MakeRel({"x", "v"}, {{a_, Value::Int(1)}});
  auto out = Project(rel, {"v", "x"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().columns(), (std::vector<std::string>{"v", "x"}));
  EXPECT_EQ(out->At(0, 0), Value::Int(1));
  EXPECT_EQ(out->At(0, 1), a_);
}

TEST_F(RdbTest, RenameColumns) {
  Relation rel = MakeRel({"x"}, {{a_}});
  auto out = Rename(rel, {{"x", "y"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().IndexOf("y"), 0);
  EXPECT_FALSE(Rename(rel, {{"ghost", "y"}}).ok());
}

TEST_F(RdbTest, HashJoinEquiKeys) {
  Relation left = MakeRel({"id", "x"}, {{Value::Int(1), a_},
                                        {Value::Int(2), b_},
                                        {Value::Int(3), c_}});
  Relation right = MakeRel({"rid", "x2"}, {{Value::Int(10), a_},
                                           {Value::Int(20), a_},
                                           {Value::Int(30), b_}});
  auto out = HashJoin(left, right, {{"x", "x2"}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // a matches twice, b once, c never.
  EXPECT_EQ(out->size(), 3u);
  EXPECT_EQ(out->schema().columns(),
            (std::vector<std::string>{"id", "x", "rid"}));
}

TEST_F(RdbTest, HashJoinEmptyKeysIsCrossProduct) {
  Relation left = MakeRel({"x"}, {{a_}, {b_}});
  Relation right = MakeRel({"y"}, {{Value::Int(1)}, {Value::Int(2)},
                                   {Value::Int(3)}});
  auto out = HashJoin(left, right, {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 6u);
}

TEST_F(RdbTest, HashJoinResidualPredicate) {
  Relation left = MakeRel({"x", "lo"}, {{a_, Value::Int(5)}});
  Relation right = MakeRel({"x2", "v"}, {{a_, Value::Int(3)},
                                         {a_, Value::Int(7)}});
  auto out = HashJoin(left, right, {{"x", "x2"}},
                      [](const Tuple& l, const Tuple& r) {
                        return EvalTestPred(TestPred::kGt, r[1], l[1]);
                      });
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
  EXPECT_EQ(out->At(0, 2), Value::Int(7));
}

TEST_F(RdbTest, HashJoinNameCollisionRejected) {
  Relation left = MakeRel({"x", "v"}, {{a_, Value::Int(1)}});
  Relation right = MakeRel({"x2", "v"}, {{a_, Value::Int(2)}});
  EXPECT_FALSE(HashJoin(left, right, {{"x", "x2"}}).ok());
}

TEST_F(RdbTest, AntiJoin) {
  Relation left = MakeRel({"x"}, {{a_}, {b_}, {c_}});
  Relation right = MakeRel({"x2"}, {{b_}});
  auto out = AntiJoin(left, right, {{"x", "x2"}});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST_F(RdbTest, AntiJoinEmptyKeysBlocksAllWhenRightNonEmpty) {
  Relation left = MakeRel({"x"}, {{a_}, {b_}});
  Relation right = MakeRel({"y"}, {{Value::Int(1)}});
  auto out = AntiJoin(left, right, {});
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  Relation empty_right{RelSchema({"y"})};
  auto out2 = AntiJoin(left, empty_right, {});
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->size(), 2u);
}

TEST_F(RdbTest, DistinctKeepsFirstOccurrence) {
  Relation rel = MakeRel({"x"}, {{a_}, {b_}, {a_}});
  Relation out = Distinct(rel);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out.At(0, 0), a_);
}

TEST_F(RdbTest, SortByColumns) {
  Relation rel = MakeRel({"v"}, {{Value::Int(3)}, {Value::Int(1)},
                                 {Value::Int(2)}});
  auto out = Sort(rel, {"v"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->At(0, 0), Value::Int(1));
  EXPECT_EQ(out->At(2, 0), Value::Int(3));
}

TEST_F(RdbTest, GroupByCountAndSum) {
  Relation rel = MakeRel({"g", "v"}, {{a_, Value::Int(1)},
                                      {a_, Value::Int(2)},
                                      {a_, Value::Int(2)},  // dup value
                                      {b_, Value::Int(5)}});
  std::vector<AggColumn> aggs;
  aggs.push_back({AggOp::kCount, "v", "n", false});
  aggs.push_back({AggOp::kSum, "v", "s", false});
  aggs.push_back({AggOp::kCount, "", "star", true});
  auto out = GroupBy(rel, {"g"}, aggs);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 2u);
  // Group a: 2 distinct values {1,2}, sum 3, 3 rows.
  EXPECT_EQ(out->At(0, 0), a_);
  EXPECT_EQ(out->At(0, 1), Value::Int(2));
  EXPECT_EQ(out->At(0, 2), Value::Int(3));
  EXPECT_EQ(out->At(0, 3), Value::Int(3));
  // Group b.
  EXPECT_EQ(out->At(1, 1), Value::Int(1));
  EXPECT_EQ(out->At(1, 2), Value::Int(5));
}

TEST_F(RdbTest, GroupByMinMaxAvg) {
  Relation rel = MakeRel({"g", "v"}, {{a_, Value::Int(10)},
                                      {a_, Value::Int(30)}});
  std::vector<AggColumn> aggs;
  aggs.push_back({AggOp::kMin, "v", "lo", false});
  aggs.push_back({AggOp::kMax, "v", "hi", false});
  aggs.push_back({AggOp::kAvg, "v", "mean", false});
  auto out = GroupBy(rel, {"g"}, aggs);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->At(0, 1), Value::Int(10));
  EXPECT_EQ(out->At(0, 2), Value::Int(30));
  EXPECT_EQ(out->At(0, 3), Value::Float(20.0));
}

TEST_F(RdbTest, GroupByNoKeysAggregatesWholeRelation) {
  Relation rel = MakeRel({"v"}, {{Value::Int(1)}, {Value::Int(2)}});
  std::vector<AggColumn> aggs;
  aggs.push_back({AggOp::kSum, "v", "s", false});
  auto out = GroupBy(rel, {}, aggs);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->At(0, 0), Value::Int(3));
}

TEST_F(RdbTest, UnionRequiresCompatibleSchemas) {
  Relation x = MakeRel({"v"}, {{Value::Int(1)}});
  Relation y = MakeRel({"v"}, {{Value::Int(2)}});
  Relation z = MakeRel({"w"}, {{Value::Int(3)}});
  auto out = Union(x, y);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  EXPECT_FALSE(Union(x, z).ok());
}

TEST_F(RdbTest, EraseByPredicate) {
  Relation rel = MakeRel({"v"}, {{Value::Int(1)}, {Value::Int(2)},
                                 {Value::Int(1)}});
  size_t n = rel.Erase(
      [](const Tuple& row) { return row[0] == Value::Int(1); });
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(rel.size(), 1u);
}

TEST_F(RdbTest, ToStringRendersHeaderAndRows) {
  Relation rel = MakeRel({"x", "v"}, {{a_, Value::Int(1)}});
  EXPECT_EQ(rel.ToString(symbols_), "x | v\na | 1\n");
}

}  // namespace
}  // namespace rdb
}  // namespace sorel
