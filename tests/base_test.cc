#include <gtest/gtest.h>

#include "base/status.h"
#include "base/symbol_table.h"
#include "base/value.h"

namespace sorel {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto inner = []() -> Result<int> { return Status::RuntimeError("x"); };
  auto outer = [&]() -> Result<int> {
    SOREL_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_FALSE(outer().ok());
}

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable t;
  SymbolId a = t.Intern("player");
  SymbolId b = t.Intern("player");
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.Name(a), "player");
}

TEST(SymbolTableTest, WellKnownSymbols) {
  SymbolTable t;
  EXPECT_EQ(t.Intern("nil"), SymbolTable::kNil);
  EXPECT_EQ(t.Intern("true"), SymbolTable::kTrue);
  EXPECT_EQ(t.Intern("false"), SymbolTable::kFalse);
}

TEST(SymbolTableTest, FindWithoutIntern) {
  SymbolTable t;
  EXPECT_EQ(t.Find("ghost"), kInvalidSymbol);
  t.Intern("ghost");
  EXPECT_NE(t.Find("ghost"), kInvalidSymbol);
}

TEST(SymbolTableTest, ManySymbolsStableViews) {
  SymbolTable t;
  std::vector<SymbolId> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(t.Intern("sym" + std::to_string(i)));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(t.Name(ids[static_cast<size_t>(i)]), "sym" + std::to_string(i));
  }
}

TEST(ValueTest, NumericEqualityAcrossKinds) {
  EXPECT_EQ(Value::Int(5), Value::Float(5.0));
  EXPECT_NE(Value::Int(5), Value::Float(5.5));
  EXPECT_EQ(Value::Int(5).Hash(), Value::Float(5.0).Hash());
}

TEST(ValueTest, NilOnlyEqualsNil) {
  EXPECT_EQ(Value::Nil(), Value::Nil());
  EXPECT_NE(Value::Nil(), Value::Int(0));
  EXPECT_NE(Value::Nil(), Value::Symbol(0));
}

TEST(ValueTest, SymbolsCompareById) {
  EXPECT_EQ(Value::Symbol(3), Value::Symbol(3));
  EXPECT_NE(Value::Symbol(3), Value::Symbol(4));
  EXPECT_NE(Value::Symbol(3), Value::Int(3));
}

TEST(ValueTest, TotalOrderAcrossKinds) {
  // nil < numbers < symbols
  EXPECT_LT(Value::Compare(Value::Nil(), Value::Int(-100)), 0);
  EXPECT_LT(Value::Compare(Value::Int(100), Value::Symbol(0)), 0);
  EXPECT_LT(Value::Compare(Value::Int(1), Value::Float(1.5)), 0);
  EXPECT_EQ(Value::Compare(Value::Int(2), Value::Float(2.0)), 0);
}

TEST(ValueTest, ToString) {
  SymbolTable t;
  EXPECT_EQ(Value::Nil().ToString(t), "nil");
  EXPECT_EQ(Value::Int(-7).ToString(t), "-7");
  EXPECT_EQ(Value::Float(2.5).ToString(t), "2.5");
  EXPECT_EQ(Value::Symbol(t.Intern("abc")).ToString(t), "abc");
}

TEST(ValueTest, TruthinessIsExactlyTrueSymbol) {
  EXPECT_TRUE(Value::Bool(true).IsTruthy());
  EXPECT_FALSE(Value::Bool(false).IsTruthy());
  EXPECT_FALSE(Value::Int(1).IsTruthy());
  EXPECT_FALSE(Value::Nil().IsTruthy());
}

TEST(ValueTest, NameLessSortsSymbolsLexicographically) {
  SymbolTable t;
  Value zebra = Value::Symbol(t.Intern("zebra"));  // interned first
  Value apple = Value::Symbol(t.Intern("apple"));
  ValueNameLess less(t);
  EXPECT_TRUE(less(apple, zebra));
  EXPECT_FALSE(less(zebra, apple));
  // Id order would say otherwise:
  EXPECT_LT(Value::Compare(zebra, apple), 0);
}

}  // namespace
}  // namespace sorel
