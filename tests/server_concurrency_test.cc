// Concurrent multi-client server tests (ctest label `concurrency`, so the
// TSan preset runs them): N client threads driving one EngineServer
// through HandleLine — disjoint sessions in parallel, one shared session
// under contention — plus the structural-sharing and LRU-eviction
// guarantees of the split between the shared compiled rule base and
// per-session match state.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/engine_server.h"
#include "server/session.h"
#include "tests/server_test_util.h"

namespace sorel {
namespace server {
namespace {

constexpr char kRules[] = R"(
(literalize item id cat val)
(literalize bin cat total)
(p pair (item ^cat <c> ^val <v>)
        (item ^cat <c> ^val > <v>)
        --> (make bin ^cat <c> ^total <v>))
(startup (make item ^id 0 ^cat seed ^val 1))
)";

std::unique_ptr<EngineServer> MustCreate(const std::string& dir,
                                         EngineServerOptions options = {}) {
  options.data_dir = dir;
  auto server = EngineServer::Create(kRules, options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(*server);
}

/// Sends one line and asserts the response reports ok.
std::string MustHandle(EngineServer& server, const std::string& line) {
  std::string response = server.HandleLine(line);
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos)
      << line << " -> " << response;
  return response;
}

/// Captures a session fingerprint with metric counters cleared: snapshot-
/// based recovery intentionally does not persist counters (see
/// server_recovery_test), so comparisons that cross an evict/reopen cycle
/// must ignore them. Everything else — WM dump, tag counter, conflict set
/// with refraction — must survive bit-identically.
Fingerprint CaptureSansCounters(Session& session) {
  Fingerprint fp = Capture(session);
  fp.counters.clear();
  return fp;
}

/// The deterministic per-session workload both the threaded sessions and
/// the solo reference run: makes, a run, a modify, a remove.
void Drive(EngineServer& server, const std::string& session) {
  auto cmd = [&](const std::string& body) {
    return MustHandle(server,
                      "{\"cmd\":" + body + ",\"session\":\"" + session +
                      "\"}");
  };
  for (int i = 1; i <= 4; ++i) {
    cmd("\"make\",\"cls\":\"item\",\"attrs\":{\"id\":" + std::to_string(i) +
        ",\"cat\":\"A\",\"val\":" + std::to_string(i * 3) + "}");
  }
  cmd("\"run\",\"max\":8");
  cmd("\"modify\",\"tag\":\"2\",\"attrs\":{\"val\":50}");
  cmd("\"run\",\"max\":8");
  cmd("\"remove\",\"tag\":\"3\"");
}

TEST(ServerConcurrencyTest, SessionsShareOneCompiledBase) {
  TempDir dir;
  auto server = MustCreate(dir.path());
  const CompiledRuleBase* shared = server->rule_base().get();
  ASSERT_NE(shared, nullptr);
  long pinned = server->rule_base().use_count();

  MustHandle(*server, R"({"cmd":"open","session":"a"})");
  MustHandle(*server, R"({"cmd":"open","session":"b","matcher":"treat"})");

  Session* a = server->FindSession("a");
  Session* b = server->FindSession("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Pointer identity: both sessions bind the server's one artifact —
  // rules, topology, schemas compiled exactly once.
  EXPECT_EQ(a->engine().rule_base().get(), shared);
  EXPECT_EQ(b->engine().rule_base().get(), shared);
  EXPECT_EQ(server->rule_base().use_count(), pinned + 2);
  EXPECT_EQ(a->engine().rules()[0], b->engine().rules()[0]);
  EXPECT_EQ(server->sessions_resident(), 2);
  EXPECT_EQ(server->shared_network_bytes(), shared->MemoryBytes());

  // The gauges surface through the protocol metrics command.
  std::string metrics =
      MustHandle(*server, R"({"cmd":"metrics","session":"a"})");
  EXPECT_NE(metrics.find("\"server.sessions_resident\":\"2\""),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("\"server.shared_network_bytes\":\"" +
                         std::to_string(shared->MemoryBytes()) + "\""),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("\"engine.rule_base_bytes\""), std::string::npos);
}

TEST(ServerConcurrencyTest, LruEvictionRoundTripsSessionState) {
  TempDir dir;
  EngineServerOptions options;
  options.max_resident_sessions = 1;
  auto server = MustCreate(dir.path(), options);

  MustHandle(*server, R"({"cmd":"open","session":"s1"})");
  Drive(*server, "s1");
  Fingerprint before = CaptureSansCounters(*server->FindSession("s1"));
  std::string dump1 = MustHandle(*server, R"({"cmd":"dump","session":"s1"})");

  // Opening s2 overflows the cap: s1 (the LRU idle session) is
  // checkpointed and released, but its name stays addressable.
  MustHandle(*server, R"({"cmd":"open","session":"s2"})");
  EXPECT_EQ(server->FindSession("s1"), nullptr);
  EXPECT_NE(server->FindSession("s2"), nullptr);
  EXPECT_EQ(server->sessions_resident(), 1);
  std::string sessions = MustHandle(*server, R"({"cmd":"sessions"})");
  EXPECT_NE(sessions.find("\"s1\""), std::string::npos);

  // The next command on s1 transparently reopens it — state intact, and
  // now s2 gets evicted instead.
  std::string dump2 = MustHandle(*server, R"({"cmd":"dump","session":"s1"})");
  EXPECT_EQ(dump1, dump2);
  Fingerprint after = CaptureSansCounters(*server->FindSession("s1"));
  EXPECT_EQ(before, after) << DiffFingerprints(before, after);
  EXPECT_EQ(server->FindSession("s2"), nullptr);
  EXPECT_EQ(server->sessions_resident(), 1);

  // Eviction and reopen preserve WAL continuity: more work lands after
  // the round trip and survives another bounce.
  MustHandle(*server,
             R"({"cmd":"make","session":"s1","cls":"item",)"
             R"("attrs":{"id":9,"cat":"A","val":99}})");
  MustHandle(*server, R"({"cmd":"run","session":"s1","max":8})");
  Fingerprint grown = CaptureSansCounters(*server->FindSession("s1"));
  MustHandle(*server, R"({"cmd":"wm","session":"s2"})");  // bounce s1 out
  EXPECT_EQ(server->FindSession("s1"), nullptr);
  MustHandle(*server, R"({"cmd":"cs","session":"s1"})");  // and back in
  Fingerprint back = CaptureSansCounters(*server->FindSession("s1"));
  EXPECT_EQ(grown, back) << DiffFingerprints(grown, back);
}

TEST(ServerConcurrencyTest, InTransactionSessionsAreNotEvicted) {
  TempDir dir;
  EngineServerOptions options;
  options.max_resident_sessions = 1;
  auto server = MustCreate(dir.path(), options);

  MustHandle(*server, R"({"cmd":"open","session":"s1"})");
  MustHandle(*server, R"({"cmd":"begin","session":"s1"})");
  MustHandle(*server,
             R"({"cmd":"make","session":"s1","cls":"item",)"
             R"("attrs":{"id":7,"cat":"A","val":7}})");

  // s1 is over the cap but pinned by its open transaction.
  MustHandle(*server, R"({"cmd":"open","session":"s2"})");
  EXPECT_NE(server->FindSession("s1"), nullptr);
  EXPECT_EQ(server->sessions_resident(), 2);

  // Commit unpins the server: it converges back under the cap by evicting
  // the LRU idle session (s2 — s1 is the slot driving the commit).
  MustHandle(*server, R"({"cmd":"commit","session":"s1"})");
  EXPECT_NE(server->FindSession("s1"), nullptr);
  EXPECT_EQ(server->FindSession("s2"), nullptr);
  EXPECT_EQ(server->sessions_resident(), 1);
  // And s1 itself is evictable again: touching s2 reopens it and bounces
  // the now-idle s1 out.
  MustHandle(*server, R"({"cmd":"wm","session":"s2"})");
  EXPECT_EQ(server->FindSession("s1"), nullptr);
}

TEST(ServerConcurrencyTest, DisjointSessionsRunInParallel) {
  constexpr int kClients = 4;
  TempDir dir;
  auto server = MustCreate(dir.path());

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &failures, c] {
      std::string name = "s" + std::to_string(c);
      std::string opened = server->HandleLine(
          "{\"cmd\":\"open\",\"session\":\"" + name + "\"}");
      if (opened.find("\"ok\":true") == std::string::npos) {
        ++failures;
        return;
      }
      Drive(*server, name);
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  // Every threaded session must be bit-identical to a solo reference
  // session that ran the same workload single-threaded.
  TempDir solo_dir;
  auto solo = MustCreate(solo_dir.path());
  MustHandle(*solo, R"({"cmd":"open","session":"ref"})");
  Drive(*solo, "ref");
  Fingerprint reference = Capture(*solo->FindSession("ref"));
  for (int c = 0; c < kClients; ++c) {
    Session* session = server->FindSession("s" + std::to_string(c));
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(Capture(*session), reference) << "session s" << c;
    EXPECT_EQ(session->engine().rule_base().get(), server->rule_base().get());
  }
}

TEST(ServerConcurrencyTest, SharedSessionSerializesUnderContention) {
  constexpr int kClients = 4;
  constexpr int kMakesPerClient = 8;
  TempDir dir;
  auto server = MustCreate(dir.path());
  MustHandle(*server, R"({"cmd":"open","session":"shared"})");

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &failures, c] {
      for (int i = 0; i < kMakesPerClient; ++i) {
        std::string response = server->HandleLine(
            "{\"cmd\":\"make\",\"session\":\"shared\",\"cls\":\"item\","
            "\"attrs\":{\"id\":" + std::to_string(c * 100 + i) +
            ",\"cat\":\"c" + std::to_string(c) + "\",\"val\":" +
            std::to_string(i) + "}}");
        if (response.find("\"ok\":true") == std::string::npos) ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  // All makes landed exactly once (plus the startup WME), whatever the
  // interleaving: the slot mutex serialized them.
  Session* session = server->FindSession("shared");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->engine().wm().Snapshot().size(),
            static_cast<size_t>(kClients * kMakesPerClient + 1));
  MustHandle(*server, R"({"cmd":"run","session":"shared","max":200})");
  MustHandle(*server, R"({"cmd":"shutdown"})");
  EXPECT_TRUE(server->shutdown_requested());
}

TEST(ServerConcurrencyTest, ConcurrentClientsWithEvictionChurn) {
  // Disjoint sessions under a cap smaller than the client count: every
  // command may trigger an eviction or a transparent reopen, concurrently.
  constexpr int kClients = 4;
  TempDir dir;
  EngineServerOptions options;
  options.max_resident_sessions = 2;
  auto server = MustCreate(dir.path(), options);

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &failures, c] {
      std::string name = "s" + std::to_string(c);
      std::string opened = server->HandleLine(
          "{\"cmd\":\"open\",\"session\":\"" + name + "\"}");
      if (opened.find("\"ok\":true") == std::string::npos) {
        ++failures;
        return;
      }
      Drive(*server, name);
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);

  TempDir solo_dir;
  auto solo = MustCreate(solo_dir.path());
  MustHandle(*solo, R"({"cmd":"open","session":"ref"})");
  Drive(*solo, "ref");
  Fingerprint reference = CaptureSansCounters(*solo->FindSession("ref"));
  for (int c = 0; c < kClients; ++c) {
    std::string name = "s" + std::to_string(c);
    // Touch the session so an evicted one reopens before capture (the
    // touch also converges residency if the churn left an overflow).
    MustHandle(*server, "{\"cmd\":\"wm\",\"session\":\"" + name + "\"}");
    Session* session = server->FindSession(name);
    ASSERT_NE(session, nullptr) << name;
    Fingerprint got = CaptureSansCounters(*session);
    EXPECT_EQ(got, reference) << name << "\n"
                              << DiffFingerprints(reference, got);
  }
  // Sequential traffic has drained; the cap must hold again.
  EXPECT_LE(server->sessions_resident(), 2);
}

}  // namespace
}  // namespace server
}  // namespace sorel
