// Parameterized scaling invariants: exact token / SOI / conflict-set
// counts as working memory grows, on every matcher.

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace sorel {
namespace {

class SizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SizeSweep, SingleCeTokenCount) {
  int n = GetParam();
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p r (player ^name <x>) --> (bind <y> 1))");
  for (int i = 0; i < n; ++i) {
    MustMake(engine, "player", {{"name", engine.Sym("p" + std::to_string(i))}});
  }
  EXPECT_EQ(engine.rete_matcher()->live_tokens(), static_cast<size_t>(n));
  EXPECT_EQ(engine.conflict_set().size(), static_cast<size_t>(n));
}

TEST_P(SizeSweep, TwoCeCrossProduct) {
  int n = GetParam();
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p r (player ^team A) (player ^team B)"
                       " --> (bind <y> 1))");
  for (int i = 0; i < n; ++i) {
    MustMake(engine, "player", {{"team", engine.Sym("A")}});
    MustMake(engine, "player", {{"team", engine.Sym("B")}});
  }
  // n level-1 tokens + n*n level-2 tokens.
  EXPECT_EQ(engine.rete_matcher()->live_tokens(),
            static_cast<size_t>(n + n * n));
  EXPECT_EQ(engine.conflict_set().size(), static_cast<size_t>(n * n));
}

TEST_P(SizeSweep, SoiAggregatesTrackWm) {
  int n = GetParam();
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine,
           "(literalize item price)"
           "(p r { [item ^price <p>] <I> }"
           " :test ((count <I>) >= 0) --> (bind <y> 1))");
  int64_t expected_sum = 0;
  for (int i = 0; i < n; ++i) {
    MustMake(engine, "item", {{"price", Value::Int(i)}});
    expected_sum += i;
  }
  SNode* snode = engine.snode("r");
  ASSERT_EQ(snode->num_sois(), n > 0 ? 1u : 0u);
  if (n == 0) return;
  const Soi* soi = snode->sois()[0];
  EXPECT_EQ(soi->size(), static_cast<size_t>(n));
  auto count = soi->AggregateValue(0);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, Value::Int(n));
  // Cross-check the RHS aggregate path via a one-shot probe rule.
  std::ostringstream probe;
  engine.set_output(&probe);
  MustLoad(engine, "(p probe [item ^price <p2>] --> (write (sum <p2>)))");
  MustRun(engine, 1);
  EXPECT_EQ(probe.str(), std::to_string(expected_sum));
}

TEST_P(SizeSweep, PartitionCountMatchesDistinctKeys) {
  int n = GetParam();
  if (n == 0) return;
  int groups = std::max(1, n / 4);
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p r [player ^team <t> ^name <m>] :scalar (<t>)"
                       " --> (bind <y> 1))");
  for (int i = 0; i < n; ++i) {
    MustMake(engine, "player",
             {{"team", engine.Sym("t" + std::to_string(i % groups))},
              {"name", engine.Sym("n" + std::to_string(i))}});
  }
  EXPECT_EQ(engine.snode("r")->num_sois(),
            static_cast<size_t>(std::min(n, groups)));
}

TEST_P(SizeSweep, RemoveEverythingLeavesNothing) {
  int n = GetParam();
  EngineOptions options;
  Engine engine(options);
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p a (player ^name <x>) (player ^team B)"
                       " - (player ^team C) --> (bind <y> 1))"
                       "(p b [player ^name <x2>] --> (bind <y> 1))");
  std::vector<TimeTag> tags;
  for (int i = 0; i < n; ++i) {
    tags.push_back(MustMake(
        engine, "player",
        {{"name", engine.Sym("p" + std::to_string(i))},
         {"team", engine.Sym(i % 3 == 0 ? "B" : (i % 3 == 1 ? "A" : "C"))}}));
  }
  // Remove in an order different from insertion.
  for (size_t i = 0; i < tags.size(); i += 2) {
    ASSERT_TRUE(engine.RemoveWme(tags[i]).ok());
  }
  for (size_t i = 1; i < tags.size(); i += 2) {
    ASSERT_TRUE(engine.RemoveWme(tags[i]).ok());
  }
  EXPECT_EQ(engine.rete_matcher()->live_tokens(), 0u);
  EXPECT_EQ(engine.conflict_set().size(), 0u);
  EXPECT_EQ(engine.snode("b")->num_sois(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(0, 1, 2, 7, 31, 100));

}  // namespace
}  // namespace sorel
