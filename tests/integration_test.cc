// Whole-program integration: the monkey-and-bananas planner (MEA-driven,
// with a set-oriented cleanup rule) must solve from several initial
// situations, on both the Rete and DIPS matchers.

#include <gtest/gtest.h>

#include <sstream>

#include "examples/dinner_party_program.h"
#include "examples/monkey_bananas_program.h"
#include "tests/test_util.h"

namespace sorel {
namespace {

Engine MakeMea(MatcherKind matcher = MatcherKind::kRete) {
  EngineOptions options;
  options.strategy = Strategy::kMea;
  options.matcher = matcher;
  return Engine(options);
}

TEST(MonkeyBananas, SolvesTheClassicSituation) {
  Engine engine = MakeMea();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, sorel_examples::kMonkeyBananas);
  MustLoad(engine, sorel_examples::kMonkeyBananasWm);
  int fired = MustRun(engine, 200);
  EXPECT_TRUE(engine.halted()) << out.str();
  EXPECT_EQ(fired, 13);
  // The narrative hits every planning stage, in order.
  std::string text = out.str();
  size_t walk = text.find("walks to 7-7");
  size_t carry = text.find("carries the ladder to 9-9");
  size_t climb = text.find("climbs onto the ladder");
  size_t grab = text.find("grabs the bananas");
  ASSERT_NE(walk, std::string::npos);
  ASSERT_NE(carry, std::string::npos);
  ASSERT_NE(climb, std::string::npos);
  ASSERT_NE(grab, std::string::npos);
  EXPECT_LT(walk, carry);
  EXPECT_LT(carry, climb);
  EXPECT_LT(climb, grab);
  // The set-oriented cleanup swept the satisfied goals in one firing.
  EXPECT_NE(text.find("cleanup: 3 satisfied goals removed"),
            std::string::npos);
}

TEST(MonkeyBananas, LadderAlreadyInPlace) {
  Engine engine = MakeMea();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, sorel_examples::kMonkeyBananas);
  MustLoad(engine,
           "(startup"
           " (make monkey ^at |9-9| ^on floor ^holds nil)"
           " (make thing ^name ladder ^at |9-9| ^on floor ^weight light)"
           " (make thing ^name bananas ^at |9-9| ^on ceiling ^weight light)"
           " (make goal ^status active ^type holds ^object bananas"
           "       ^to eat))");
  MustRun(engine, 200);
  EXPECT_TRUE(engine.halted()) << out.str();
  // No walking or carrying needed: straight to climb + grab.
  EXPECT_EQ(out.str().find("carries"), std::string::npos);
  EXPECT_NE(out.str().find("grabs the bananas"), std::string::npos);
}

TEST(MonkeyBananas, BananasOnTheFloor) {
  Engine engine = MakeMea();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, sorel_examples::kMonkeyBananas);
  MustLoad(engine,
           "(startup"
           " (make monkey ^at |1-1| ^on couch ^holds nil)"
           " (make thing ^name couch ^at |1-1| ^on floor ^weight heavy)"
           " (make thing ^name bananas ^at |6-6| ^on floor ^weight light)"
           " (make goal ^status active ^type holds ^object bananas"
           "       ^to eat))");
  MustRun(engine, 200);
  EXPECT_TRUE(engine.halted()) << out.str();
  EXPECT_NE(out.str().find("picks up the bananas"), std::string::npos);
}

TEST(MonkeyBananas, SolvesOnDipsMatcherToo) {
  Engine engine = MakeMea(MatcherKind::kDips);
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, sorel_examples::kMonkeyBananas);
  MustLoad(engine, sorel_examples::kMonkeyBananasWm);
  int fired = MustRun(engine, 200);
  EXPECT_TRUE(engine.halted()) << out.str();
  EXPECT_EQ(fired, 13);
  EXPECT_NE(out.str().find("the monkey has the bananas!"),
            std::string::npos);
}

TEST(MonkeyBananas, NoPlanWithoutALadder) {
  Engine engine = MakeMea();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, sorel_examples::kMonkeyBananas);
  MustLoad(engine,
           "(startup"
           " (make monkey ^at |1-1| ^on floor ^holds nil)"
           " (make thing ^name bananas ^at |9-9| ^on ceiling ^weight light)"
           " (make goal ^status active ^type holds ^object bananas"
           "       ^to eat))");
  MustRun(engine, 200);
  EXPECT_FALSE(engine.halted());  // quiesces without a solution
  EXPECT_EQ(out.str().find("grabs the bananas"), std::string::npos);
}

class DinnerParty : public ::testing::TestWithParam<int> {};

TEST_P(DinnerParty, SeatsEveryoneAlternatingWithSharedHobbies) {
  int guests = GetParam();
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, sorel_examples::kDinnerRules);
  MustLoad(engine, sorel_examples::DinnerPartyWm(guests));
  int fired = MustRun(engine, 10 * guests + 16);
  EXPECT_EQ(fired, guests + 1);  // start + (n-1) extends + report
  // Validate the seating: n seated WMEs, alternating sexes.
  SymbolId seat = engine.symbols().Intern("seat");
  SymbolId name = engine.symbols().Intern("name");
  std::map<int64_t, std::string> order;
  for (const WmePtr& w : engine.wm().Snapshot()) {
    if (engine.symbols().Name(w->cls()) != "seated") continue;
    const ClassSchema* s = engine.schemas().Find(w->cls());
    order[w->field(s->FieldOf(seat)).as_int()] =
        std::string(engine.symbols().Name(
            w->field(s->FieldOf(name)).as_symbol()));
  }
  ASSERT_EQ(order.size(), static_cast<size_t>(guests));
  // guestN is male iff N is even; seats must alternate.
  int prev_parity = -1;
  for (const auto& [s, n] : order) {
    int idx = std::stoi(n.substr(5));
    int parity = idx % 2;
    if (prev_parity >= 0) EXPECT_NE(parity, prev_parity) << "seat " << s;
    prev_parity = parity;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DinnerParty, ::testing::Values(2, 8, 24));

TEST(DinnerParty2, SameFiringCountOnDips) {
  EngineOptions options;
  options.matcher = MatcherKind::kDips;
  Engine engine(options);
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, sorel_examples::kDinnerRules);
  MustLoad(engine, sorel_examples::DinnerPartyWm(8));
  EXPECT_EQ(MustRun(engine, 200), 9);
}

}  // namespace
}  // namespace sorel
