// γ-memory invariants under random WM churn, checked against oracles:
//   1. An SOI's members are exactly the twin regular rule's instantiations
//      that share its partition key (the Figure 2 aggregation law).
//   2. Members stay ordered by descending recency ("ordered like the
//      conflict set", Figure 3).
//   3. Incremental aggregate values equal recomputation from the rows.
//   4. The active flag equals the non-incremental :test oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "core/aggregate.h"
#include "core/soi_key.h"
#include "core/test_eval.h"
#include "tests/test_util.h"

namespace sorel {
namespace {

class Rng {
 public:
  explicit Rng(unsigned seed) : state_(seed * 2654435761u + 99u) {}
  unsigned Next(unsigned bound) {
    state_ = state_ * 1664525u + 1013904223u;
    return (state_ >> 16) % bound;
  }

 private:
  unsigned state_;
};

constexpr std::string_view kSchema = "(literalize player name team score)";

// The set-oriented rule under test and its tuple-oriented twin: same LHS,
// set brackets removed.
constexpr const char* kSetRule =
    "(p watch (player ^team <t> ^score <g>)"
    " [player ^team <t> ^name <n> ^score <s>]"
    " :test (((count <n>) >= 2) and ((sum <s>) > 5)) --> (halt))";
constexpr const char* kTwinRule =
    "(p watch (player ^team <t> ^score <g>)"
    " (player ^team <t> ^name <n> ^score <s>) --> (halt))";

class SoiInvariants : public ::testing::TestWithParam<int> {};

TEST_P(SoiInvariants, GammaMemoryMatchesOracles) {
  std::ostringstream devnull;
  Engine set_engine, twin_engine;
  set_engine.set_output(&devnull);
  twin_engine.set_output(&devnull);
  MustLoad(set_engine, std::string(kSchema) + kSetRule);
  MustLoad(twin_engine, std::string(kSchema) + kTwinRule);
  const CompiledRule* rule = set_engine.FindRule("watch");
  SNode* snode = set_engine.snode("watch");
  ASSERT_NE(snode, nullptr);

  Rng rng(static_cast<unsigned>(GetParam()));
  std::vector<TimeTag> live;
  for (int step = 0; step < 80; ++step) {
    if (!live.empty() && rng.Next(3) == 0) {
      size_t i = rng.Next(static_cast<unsigned>(live.size()));
      ASSERT_TRUE(set_engine.RemoveWme(live[i]).ok());
      ASSERT_TRUE(twin_engine.RemoveWme(live[i]).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(i));
    } else {
      std::string name = "n" + std::to_string(rng.Next(3));
      std::string team = "t" + std::to_string(rng.Next(2));
      int64_t score = rng.Next(5);
      for (Engine* e : {&set_engine, &twin_engine}) {
        auto r = e->MakeWme("player", {{"name", e->Sym(name)},
                                       {"team", e->Sym(team)},
                                       {"score", Value::Int(score)}});
        ASSERT_TRUE(r.ok());
        if (e == &set_engine) live.push_back(*r);
      }
    }

    // Oracle 1: group the twin's regular instantiations by partition key.
    std::map<std::vector<TimeTag>, size_t> twin_groups;
    for (InstantiationRef* inst : twin_engine.conflict_set().Entries()) {
      std::vector<Row> rows;
      inst->CollectRows(&rows);
      SoiKey key = MakeSoiKey(*rule, rows.front());
      std::vector<TimeTag> flat = key.tags;
      for (const Value& v : key.vals) {
        flat.push_back(static_cast<TimeTag>(v.Hash()));
      }
      ++twin_groups[flat];
    }
    std::map<std::vector<TimeTag>, size_t> soi_groups;
    size_t total_members = 0;
    for (const Soi* soi : snode->sois()) {
      ASSERT_FALSE(soi->members().empty());
      SoiKey key = MakeSoiKey(*rule, soi->members().front().row);
      std::vector<TimeTag> flat = key.tags;
      for (const Value& v : key.vals) {
        flat.push_back(static_cast<TimeTag>(v.Hash()));
      }
      soi_groups[flat] += soi->size();
      total_members += soi->size();

      // Oracle 2: descending recency order.
      for (size_t i = 1; i < soi->members().size(); ++i) {
        EXPECT_LE(CompareRecencyTags(soi->members()[i].rec,
                                     soi->members()[i - 1].rec),
                  0)
            << "step " << step;
      }

      // Oracles 3+4: aggregates and activation vs. recompute.
      std::vector<Row> rows;
      soi->CollectRows(&rows);
      auto pass = EvalTestOverRows(*rule, rows);
      ASSERT_TRUE(pass.ok()) << pass.status().ToString();
      EXPECT_EQ(soi->active(), *pass) << "step " << step;
      for (int a = 0; a < static_cast<int>(rule->test_aggregates.size());
           ++a) {
        auto incremental = soi->AggregateValue(a);
        ASSERT_TRUE(incremental.ok());
        // Recompute the same aggregate from scratch.
        const AggregateSpec& spec =
            rule->test_aggregates[static_cast<size_t>(a)];
        AggState fresh(spec.op);
        for (const Row& row : rows) {
          const WmePtr& w = row[static_cast<size_t>(spec.token_pos)];
          fresh.Insert(spec.over_element ? Value::Int(w->time_tag())
                                         : w->field(spec.field));
        }
        auto recomputed = fresh.Current();
        ASSERT_TRUE(recomputed.ok());
        EXPECT_EQ(*incremental, *recomputed) << "step " << step;
      }
    }
    EXPECT_EQ(soi_groups, twin_groups) << "step " << step;
    EXPECT_EQ(total_members, twin_engine.conflict_set().size())
        << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoiInvariants, ::testing::Range(0, 10));

}  // namespace
}  // namespace sorel
