// Randomized cross-checking properties:
//   1. Rete, TREAT, and DIPS produce identical conflict sets on
//      tuple-oriented programs over random add/remove sequences.
//   2. Rete and DIPS produce identical set-oriented instantiations.
//   3. S-node ablation options do not change observable state.
//   4. Removing every WME leaves no tokens, SOIs, or instantiations.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace sorel {
namespace {

/// Deterministic LCG so failures reproduce.
class Rng {
 public:
  explicit Rng(unsigned seed) : state_(seed * 2654435761u + 12345u) {}
  unsigned Next(unsigned bound) {
    state_ = state_ * 1664525u + 1013904223u;
    return (state_ >> 16) % bound;
  }

 private:
  unsigned state_;
};

constexpr const char* kRegularRules =
    "(p cross (player ^team A ^name <n1>) (player ^team B ^name <n2>)"
    " --> (halt))"
    "(p selfjoin (player ^name <n>) (player ^name <n>) --> (halt))"
    "(p negated (player ^team A ^name <n>)"
    " - (player ^team B ^name <n>) --> (halt))"
    "(p guard (player ^score <s>) (player ^score > <s>) --> (halt))";

constexpr const char* kSetRules =
    "(p groups [player ^team <t> ^name <n>] :scalar (<t>)"
    " :test ((count <n>) >= 2) --> (halt))"
    "(p perteam (player ^team <t> ^score <s>)"
    " [player ^team <t> ^name <n2>]"
    " :test ((count <n2>) > 1) --> (halt))"
    "(p totals { [player ^score <s>] <P> }"
    " :test (((sum <s>) > 10) and ((count <P>) < 9)) --> (halt))";

constexpr std::string_view kSchema = "(literalize player name team score)";

/// A canonical fingerprint of the conflict set: per entry, the rule name
/// and the sorted member-row signatures.
std::multiset<std::string> Fingerprint(Engine& engine) {
  std::multiset<std::string> out;
  for (InstantiationRef* inst : engine.conflict_set().Entries()) {
    std::vector<Row> rows;
    inst->CollectRows(&rows);
    std::vector<std::string> row_sigs;
    for (const Row& row : rows) {
      std::string sig;
      for (const WmePtr& w : row) {
        sig += std::to_string(w->time_tag());
        sig += ",";
      }
      row_sigs.push_back(std::move(sig));
    }
    std::sort(row_sigs.begin(), row_sigs.end());
    std::string entry = inst->rule().name + "{";
    for (const std::string& s : row_sigs) entry += s + ";";
    entry += "}";
    out.insert(std::move(entry));
  }
  return out;
}

/// Applies the same random op to every engine.
class Driver {
 public:
  explicit Driver(std::vector<Engine*> engines) : engines_(std::move(engines)) {}

  void RandomOp(Rng& rng) {
    bool remove = !live_.empty() && rng.Next(3) == 0;
    if (remove) {
      size_t i = rng.Next(static_cast<unsigned>(live_.size()));
      TimeTag tag = live_[i];
      live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
      for (Engine* e : engines_) ASSERT_TRUE(e->RemoveWme(tag).ok());
      return;
    }
    static const char* kNames[] = {"ann", "bob", "cyd", "dee"};
    static const char* kTeams[] = {"A", "B", "C"};
    const char* name = kNames[rng.Next(4)];
    const char* team = kTeams[rng.Next(3)];
    int64_t score = static_cast<int64_t>(rng.Next(6));
    TimeTag tag = -1;
    for (Engine* e : engines_) {
      auto r = e->MakeWme("player", {{"name", e->Sym(name)},
                                     {"team", e->Sym(team)},
                                     {"score", Value::Int(score)}});
      ASSERT_TRUE(r.ok());
      tag = *r;
    }
    live_.push_back(tag);
  }

  void RemoveAll() {
    for (TimeTag tag : live_) {
      for (Engine* e : engines_) ASSERT_TRUE(e->RemoveWme(tag).ok());
    }
    live_.clear();
  }

  const std::vector<TimeTag>& live() const { return live_; }

 private:
  std::vector<Engine*> engines_;
  std::vector<TimeTag> live_;
};

class MatcherEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MatcherEquivalence, RegularProgramsAgreeAcrossMatchers) {
  std::ostringstream devnull;
  EngineOptions treat_opts, dips_opts;
  treat_opts.matcher = MatcherKind::kTreat;
  dips_opts.matcher = MatcherKind::kDips;
  Engine rete, treat(treat_opts), dips(dips_opts);
  for (Engine* e : {&rete, &treat, &dips}) {
    e->set_output(&devnull);
    MustLoad(*e, std::string(kSchema) + kRegularRules);
  }
  Rng rng(static_cast<unsigned>(GetParam()));
  Driver driver({&rete, &treat, &dips});
  for (int step = 0; step < 60; ++step) {
    driver.RandomOp(rng);
    auto fp_rete = Fingerprint(rete);
    ASSERT_EQ(fp_rete, Fingerprint(treat)) << "step " << step;
    ASSERT_EQ(fp_rete, Fingerprint(dips)) << "step " << step;
  }
  driver.RemoveAll();
  EXPECT_EQ(Fingerprint(rete).size(), 0u);
  EXPECT_EQ(Fingerprint(treat).size(), 0u);
  EXPECT_EQ(Fingerprint(dips).size(), 0u);
  EXPECT_EQ(rete.rete_matcher()->live_tokens(), 0u);
}

TEST_P(MatcherEquivalence, SetProgramsAgreeReteVsDips) {
  std::ostringstream devnull;
  EngineOptions dips_opts;
  dips_opts.matcher = MatcherKind::kDips;
  Engine rete, dips(dips_opts);
  for (Engine* e : {&rete, &dips}) {
    e->set_output(&devnull);
    MustLoad(*e, std::string(kSchema) + kSetRules);
  }
  Rng rng(static_cast<unsigned>(GetParam()) + 1000u);
  Driver driver({&rete, &dips});
  for (int step = 0; step < 60; ++step) {
    driver.RandomOp(rng);
    ASSERT_EQ(Fingerprint(rete), Fingerprint(dips)) << "step " << step;
  }
  driver.RemoveAll();
  EXPECT_EQ(Fingerprint(rete).size(), 0u);
  EXPECT_EQ(rete.rete_matcher()->live_tokens(), 0u);
  for (const char* rule : {"groups", "perteam", "totals"}) {
    SNode* snode = rete.snode(rule);
    ASSERT_NE(snode, nullptr);
    EXPECT_EQ(snode->num_sois(), 0u) << rule;
  }
}

TEST_P(MatcherEquivalence, SNodeAblationsAgree) {
  std::ostringstream devnull;
  EngineOptions recompute_opts, scan_opts;
  recompute_opts.snode.recompute_aggregates = true;
  scan_opts.snode.linear_scan_gamma = true;
  Engine base, recompute(recompute_opts), scan(scan_opts);
  for (Engine* e : {&base, &recompute, &scan}) {
    e->set_output(&devnull);
    MustLoad(*e, std::string(kSchema) + kSetRules);
  }
  Rng rng(static_cast<unsigned>(GetParam()) + 2000u);
  Driver driver({&base, &recompute, &scan});
  for (int step = 0; step < 50; ++step) {
    driver.RandomOp(rng);
    auto fp = Fingerprint(base);
    ASSERT_EQ(fp, Fingerprint(recompute)) << "step " << step;
    ASSERT_EQ(fp, Fingerprint(scan)) << "step " << step;
  }
}

TEST_P(MatcherEquivalence, RunsReachSameQuiescentWorkingMemory) {
  // A deterministic cleanup program must reach the same final WM on Rete
  // and DIPS (firing order may differ only among equal-priority rules, so
  // use a confluent program: remove all duplicates).
  std::ostringstream out1, out2;
  EngineOptions dips_opts;
  dips_opts.matcher = MatcherKind::kDips;
  Engine rete, dips(dips_opts);
  rete.set_output(&out1);
  dips.set_output(&out2);
  std::string program =
      std::string(kSchema) +
      "(p dedup { [player ^name <n> ^team <t>] <P> } :scalar (<n> <t>)"
      " :test ((count <P>) > 1) -->"
      " (bind <first> true)"
      " (foreach <P> descending"
      "   (if (<first> == true) (bind <first> false) else (remove <P>))))";
  MustLoad(rete, program);
  MustLoad(dips, program);
  Rng rng(static_cast<unsigned>(GetParam()) + 3000u);
  Driver driver({&rete, &dips});
  for (int step = 0; step < 40; ++step) driver.RandomOp(rng);
  MustRun(rete, 1000);
  MustRun(dips, 1000);
  EXPECT_EQ(rete.wm().size(), dips.wm().size());
  // No duplicates remain in either.
  auto count_pairs = [](Engine& e) {
    std::multiset<std::string> pairs;
    SymbolId name = e.symbols().Intern("name");
    SymbolId team = e.symbols().Intern("team");
    for (const WmePtr& w : e.wm().Snapshot()) {
      const ClassSchema* s = e.schemas().Find(w->cls());
      pairs.insert(w->field(s->FieldOf(name)).ToString(e.symbols()) + "/" +
                   w->field(s->FieldOf(team)).ToString(e.symbols()));
    }
    return pairs;
  };
  auto p1 = count_pairs(rete);
  auto p2 = count_pairs(dips);
  EXPECT_EQ(p1, p2);
  for (const std::string& key : std::set<std::string>(p1.begin(), p1.end())) {
    EXPECT_EQ(p1.count(key), 1u) << key;
  }
}

TEST_P(MatcherEquivalence, IndexedAndLinearMatchersFireIdentically) {
  // The indexed join/select paths must be *sequence*-preserving, not just
  // set-preserving: same conflict sets after every op and the same firing
  // order (rule + recency tags) whenever the engine runs.
  std::ostringstream indexed_trace, linear_trace;
  EngineOptions indexed_opts, linear_opts;
  indexed_opts.trace_firings = true;
  linear_opts.trace_firings = true;
  linear_opts.rete.use_indexed_joins = false;
  linear_opts.indexed_conflict_set = false;
  Engine indexed(indexed_opts), linear(linear_opts);
  indexed.set_output(&indexed_trace);
  linear.set_output(&linear_trace);
  for (Engine* e : {&indexed, &linear}) {
    MustLoad(*e, std::string(kSchema) + kRegularRules + kSetRules);
  }
  Rng rng(static_cast<unsigned>(GetParam()) + 4000u);
  Driver driver({&indexed, &linear});
  for (int step = 0; step < 60; ++step) {
    driver.RandomOp(rng);
    ASSERT_EQ(Fingerprint(indexed), Fingerprint(linear)) << "step " << step;
    if (step % 5 == 4) {
      int fired_indexed = MustRun(indexed, 3);
      int fired_linear = MustRun(linear, 3);
      ASSERT_EQ(fired_indexed, fired_linear) << "step " << step;
      ASSERT_EQ(indexed_trace.str(), linear_trace.str()) << "step " << step;
    }
  }
  driver.RemoveAll();
  EXPECT_EQ(Fingerprint(indexed).size(), 0u);
  EXPECT_EQ(Fingerprint(linear).size(), 0u);
  EXPECT_EQ(indexed.rete_matcher()->live_tokens(), 0u);
  EXPECT_EQ(linear.rete_matcher()->live_tokens(), 0u);
  // The ablation really took: only the default engine probed indexes.
  EXPECT_GT(indexed.rete_matcher()->stats().index_probes, 0u);
  EXPECT_EQ(linear.rete_matcher()->stats().index_probes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherEquivalence, ::testing::Range(0, 10));

}  // namespace
}  // namespace sorel
