#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"
#include "treat/treat.h"

namespace sorel {
namespace {

TEST(EngineTest, MakeMatchFireWrite) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, "(literalize greeting text)"
                   "(p hello (greeting ^text <t>) --> (write <t> (crlf)))");
  MustMake(engine, "greeting", {{"text", engine.Sym("hi")}});
  EXPECT_EQ(MustRun(engine), 1);
  EXPECT_EQ(out.str(), "hi\n");
}

TEST(EngineTest, HaltStopsTheRun) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p stop (player) --> (halt) (write unreachable))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(MustRun(engine), 1);
  EXPECT_TRUE(engine.halted());
  EXPECT_EQ(out.str(), "");
}

TEST(EngineTest, MaxFiringsLimit) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p any (player ^name <n>) --> (write <n>))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(MustRun(engine, 2), 2);
  EXPECT_FALSE(engine.halted());
  EXPECT_EQ(MustRun(engine), 3);  // the rest
}

TEST(EngineTest, ModifyGivesFreshTimeTagAndRematches) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine,
           "(literalize counter n)"
           "(p bump { (counter ^n { <v> < 3 }) <c> } -->"
           " (modify <c> ^n (<v> + 1)))");
  MustMake(engine, "counter", {{"n", Value::Int(0)}});
  EXPECT_EQ(MustRun(engine, 100), 3);  // 0->1->2->3, then no match
  auto snap = engine.wm().Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0]->field(0), Value::Int(3));
  EXPECT_EQ(snap[0]->time_tag(), 4);  // three modifies = three fresh tags
}

TEST(EngineTest, NegationBlocksAndUnblocks) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(literalize done)"
                       "(p lonely (player ^name <n>) - (player ^team B)"
                       " --> (write <n>))");
  MustMake(engine, "player", {{"name", engine.Sym("Ann")},
                              {"team", engine.Sym("A")}});
  EXPECT_EQ(engine.conflict_set().size(), 1u);
  TimeTag blocker = MustMake(engine, "player", {{"name", engine.Sym("Bob")},
                                                {"team", engine.Sym("B")}});
  EXPECT_EQ(engine.conflict_set().size(), 0u);
  ASSERT_TRUE(engine.RemoveWme(blocker).ok());
  EXPECT_EQ(engine.conflict_set().size(), 1u);
}

TEST(EngineTest, LexPrefersRecency) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p p1 (player ^name <n>) --> (write <n> (crlf)))");
  MustMake(engine, "player", {{"name", engine.Sym("old")}});
  MustMake(engine, "player", {{"name", engine.Sym("new")}});
  MustRun(engine);
  EXPECT_EQ(out.str(), "new\nold\n");
}

TEST(EngineTest, LexPrefersSpecificityOnEqualRecency) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p generic (player ^name <n>) --> (write g (crlf)))"
                       "(p specific (player ^name <n> ^team A)"
                       " --> (write s (crlf)))");
  MustMake(engine, "player", {{"name", engine.Sym("x")},
                              {"team", engine.Sym("A")}});
  MustRun(engine);
  EXPECT_EQ(out.str(), "s\ng\n");
}

TEST(EngineTest, MeaPrefersFirstCeRecency) {
  // Under MEA the instantiation whose *first* CE matches the most recent
  // WME wins, even if another instantiation has a more recent WME later.
  std::string src = std::string(kPlayerSchema) +
                    "(literalize goal name)"
                    "(p r (goal ^name <g>) (player ^name <n>)"
                    " --> (write <g> <n> (crlf)))";
  for (Strategy strategy : {Strategy::kLex, Strategy::kMea}) {
    EngineOptions options;
    options.strategy = strategy;
    Engine engine(options);
    std::ostringstream out;
    engine.set_output(&out);
    MustLoad(engine, src);
    MustMake(engine, "goal", {{"name", engine.Sym("g1")}});   // tag 1
    MustMake(engine, "player", {{"name", engine.Sym("p1")}}); // tag 2
    MustMake(engine, "goal", {{"name", engine.Sym("g2")}});   // tag 3
    MustRun(engine, 1);
    // LEX: both instantiations contain tag 3? No: (g1,p1)={1,2},
    // (g2,p1)={3,2}. LEX picks {3,2}; MEA also picks first-CE recency g2.
    EXPECT_EQ(out.str(), "g2 p1\n");
    // Distinguishing case: add an old goal and a new player.
    out.str("");
  }
}

TEST(EngineTest, MeaVersusLexDiffer) {
  std::string src = std::string(kPlayerSchema) +
                    "(literalize goal name)"
                    "(p r (goal ^name <g>) (player ^name <n>)"
                    " --> (write <g> <n> (crlf)))";
  // WM: goal g-old (1), goal g-new (2), player p-old (3), player p-new (4).
  // Instantiations: (1,3) (1,4) (2,3) (2,4).
  // LEX top: (2,4) {4,2}; then (1,4) {4,1}; MEA orders by goal tag first:
  // (2,4) then (2,3).
  for (bool mea : {false, true}) {
    EngineOptions options;
    options.strategy = mea ? Strategy::kMea : Strategy::kLex;
    Engine engine(options);
    std::ostringstream out;
    engine.set_output(&out);
    MustLoad(engine, src);
    MustMake(engine, "goal", {{"name", engine.Sym("g-old")}});
    MustMake(engine, "goal", {{"name", engine.Sym("g-new")}});
    MustMake(engine, "player", {{"name", engine.Sym("p-old")}});
    MustMake(engine, "player", {{"name", engine.Sym("p-new")}});
    MustRun(engine, 2);
    if (mea) {
      EXPECT_EQ(out.str(), "g-new p-new\ng-new p-old\n");
    } else {
      EXPECT_EQ(out.str(), "g-new p-new\ng-old p-new\n");
    }
  }
}

TEST(EngineTest, DisjunctionMatches) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p ab (player ^team << A B >> ^name <n>)"
                       " --> (write <n>))");
  MustMake(engine, "player", {{"name", engine.Sym("a")},
                              {"team", engine.Sym("A")}});
  MustMake(engine, "player", {{"name", engine.Sym("c")},
                              {"team", engine.Sym("C")}});
  EXPECT_EQ(MustRun(engine), 1);
}

TEST(EngineTest, RelationalPredicates) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine,
           "(literalize reading value limit)"
           "(p over (reading ^value <v> ^limit <= <v>) --> (write over))");
  MustMake(engine, "reading", {{"value", Value::Int(10)},
                               {"limit", Value::Int(5)}});
  MustMake(engine, "reading", {{"value", Value::Int(3)},
                               {"limit", Value::Int(5)}});
  EXPECT_EQ(MustRun(engine), 1);
}

TEST(EngineTest, RemoveOrdinal) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p purge (player ^team B) --> (remove 1))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(MustRun(engine), 3);
  EXPECT_EQ(engine.wm().size(), 2u);  // only team A left
}

TEST(EngineTest, RhsAggregatesAndArithmetic) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine,
           "(literalize item price)"
           "(p report { [item ^price <p>] <I> } -->"
           " (write n: (count <I>) sum: (sum <p>) min: (min <p>)"
           "        max: (max <p>) avg: (avg <p>) (crlf)))");
  MustMake(engine, "item", {{"price", Value::Int(10)}});
  MustMake(engine, "item", {{"price", Value::Int(20)}});
  MustMake(engine, "item", {{"price", Value::Int(30)}});
  EXPECT_EQ(MustRun(engine, 1), 1);
  EXPECT_EQ(out.str(), "n: 3 sum: 60 min: 10 max: 30 avg: 20\n");
}

TEST(EngineTest, SetRemoveClearsWholeSet) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p clear { [player ^team B] <B> } -->"
                       " (set-remove <B>))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(MustRun(engine, 5), 1);
  EXPECT_EQ(engine.wm().size(), 2u);
}

TEST(EngineTest, TreatMatcherRunsRegularPrograms) {
  EngineOptions options;
  options.matcher = MatcherKind::kTreat;
  Engine engine(options);
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p compete (player ^name <n1> ^team A)"
                       "           (player ^name <n2> ^team B) -->"
                       " (write <n1> <n2> (crlf)))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(engine.conflict_set().size(), 6u);
  EXPECT_EQ(MustRun(engine), 6);
}

TEST(EngineTest, TreatRejectsSetRules) {
  EngineOptions options;
  options.matcher = MatcherKind::kTreat;
  Engine engine(options);
  Status s = engine.LoadString(std::string(kPlayerSchema) +
                               "(p r [player] --> (halt))");
  EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
}

TEST(EngineTest, DuplicateRuleNameRejected) {
  Engine engine;
  MustLoad(engine, std::string(kPlayerSchema) + "(p r (player) --> (halt))");
  EXPECT_FALSE(engine.LoadString("(p r (player) --> (halt))").ok());
}

TEST(EngineTest, RulesAddedAfterWmesMatchExistingWm) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema));
  MakeFigure1Wm(engine);
  MustLoad(engine, "(p late [player ^name <n>] --> (write (count <n>)))");
  SNode* snode = engine.snode("late");
  ASSERT_NE(snode, nullptr);
  ASSERT_EQ(snode->num_sois(), 1u);
  EXPECT_EQ(snode->sois()[0]->size(), 5u);
  MustRun(engine, 1);
  EXPECT_EQ(out.str(), "3");  // distinct names: Jack, Janice, Sue
}

}  // namespace
}  // namespace sorel
