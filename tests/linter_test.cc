#include <gtest/gtest.h>

#include "lang/compiler.h"
#include "lang/linter.h"
#include "lang/parser.h"

namespace sorel {
namespace {

class LinterTest : public ::testing::Test {
 protected:
  LinterTest() : compiler_(&symbols_, &schemas_) {}

  std::vector<LintWarning> Lint(const std::string& rule_src) {
    auto program = Parse(
        "(literalize player name team score)(literalize flag kind)" +
        rule_src);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    for (const LiteralizeAst& lit : program->literalizes) {
      EXPECT_TRUE(compiler_.DeclareLiteralize(lit).ok());
    }
    auto rule = compiler_.Compile(std::move(program->rules[0]));
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    rules_.push_back(std::move(*rule));
    return LintRule(*rules_.back());
  }

  static bool Has(const std::vector<LintWarning>& warnings, LintCode code) {
    for (const LintWarning& w : warnings) {
      if (w.code == code) return true;
    }
    return false;
  }

  SymbolTable symbols_;
  SchemaRegistry schemas_;
  RuleCompiler compiler_;
  std::vector<CompiledRulePtr> rules_;
};

TEST_F(LinterTest, CleanRuleHasNoWarnings) {
  auto w = Lint(
      "(p clean (player ^name <n> ^team A) (player ^name <n> ^team B)"
      " --> (write <n>))");
  EXPECT_TRUE(w.empty()) << w.front().ToString();
}

TEST_F(LinterTest, UnusedVariable) {
  auto w = Lint("(p r (player ^name <n> ^team <t>) --> (write <n>))");
  ASSERT_TRUE(Has(w, LintCode::kUnusedVariable));
  EXPECT_NE(w.front().ToString().find("<t>"), std::string::npos);
}

TEST_F(LinterTest, JoinedVariableIsNotUnused) {
  auto w = Lint(
      "(p r (player ^team <t>) (player ^team <t>) --> (bind <x> 1))");
  EXPECT_FALSE(Has(w, LintCode::kUnusedVariable));
}

TEST_F(LinterTest, ScalarClauseVariableIsNotUnused) {
  auto w = Lint(
      "(p r { [player ^team <t> ^name <n>] <P> } :scalar (<t>)"
      " :test ((count <n>) > 1) --> (set-remove <P>))");
  EXPECT_FALSE(Has(w, LintCode::kUnusedVariable));
}

TEST_F(LinterTest, CrossProduct) {
  auto w = Lint("(p r (player ^team A) (flag) --> (bind <x> 1))");
  EXPECT_TRUE(Has(w, LintCode::kCrossProduct));
}

TEST_F(LinterTest, JoinedCesAreNotCrossProduct) {
  auto w = Lint(
      "(p r (player ^name <n>) (player ^name <n> ^team B)"
      " --> (bind <x> 1))");
  EXPECT_FALSE(Has(w, LintCode::kCrossProduct));
}

TEST_F(LinterTest, PointlessSet) {
  auto w = Lint("(p r [player ^name <n>] --> (write done))");
  EXPECT_TRUE(Has(w, LintCode::kPointlessSet));
  EXPECT_TRUE(Has(w, LintCode::kNoTestNoPartition));
}

TEST_F(LinterTest, ConsumedSetIsFine) {
  auto w = Lint("(p r [player ^name <n>] --> (foreach <n> (write <n>)))");
  EXPECT_FALSE(Has(w, LintCode::kPointlessSet));
  EXPECT_FALSE(Has(w, LintCode::kNoTestNoPartition));
}

TEST_F(LinterTest, AggregateConsumesSet) {
  auto w = Lint(
      "(p r [player ^name <n>] :test ((count <n>) > 3) --> (halt))");
  EXPECT_FALSE(Has(w, LintCode::kPointlessSet));
}

TEST_F(LinterTest, SelfTrigger) {
  auto w = Lint(
      "(p r (player ^team A) --> (make player ^team A))");
  EXPECT_TRUE(Has(w, LintCode::kSelfTrigger));
}

TEST_F(LinterTest, MakingADifferentClassIsFine) {
  auto w = Lint("(p r (player ^team A) --> (make flag ^kind done))");
  EXPECT_FALSE(Has(w, LintCode::kSelfTrigger));
}

TEST_F(LinterTest, PaperRulesAreClean) {
  // The paper's own Figure 5 rules should lint clean.
  auto w = Lint(
      "(p RemoveDups { [player ^name <n> ^team <t>] <P> }"
      " :scalar (<n> <t>) :test ((count <P>) > 1) -->"
      " (bind <first> true)"
      " (foreach <P> descending"
      "   (if (<first> == true) (bind <first> false) else (remove <P>))))");
  EXPECT_TRUE(w.empty()) << w.front().ToString();
}

TEST_F(LinterTest, SwitchTeamsFlagsItsCrossProduct) {
  // The literal SwitchTeams rule does build an A x B cross product — the
  // honest caveat EXPERIMENTS.md documents; the linter calls it out.
  auto w = Lint(
      "(p SwitchTeams { [player ^team A] <A> } { [player ^team B] <B> }"
      " :test ((count <A>) == (count <B>)) -->"
      " (set-modify <A> ^team B) (set-modify <B> ^team A))");
  EXPECT_TRUE(Has(w, LintCode::kCrossProduct));
  EXPECT_FALSE(Has(w, LintCode::kPointlessSet));
}

}  // namespace
}  // namespace sorel
