#include <gtest/gtest.h>

#include "lang/parser.h"
#include "lang/compiler.h"
#include "lang/printer.h"

namespace sorel {
namespace {

// The printer's contract: Parse(Print(Parse(src))) == Parse(src)
// structurally, and printing is a fixed point after one round.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

std::string PrintOf(const ProgramAst& program, const SymbolTable& symbols) {
  return AstPrinter(&symbols).PrintProgram(program);
}

TEST_P(RoundTrip, PrintParsePrintIsStable) {
  SymbolTable symbols;
  auto first = Parse(GetParam());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::string printed = PrintOf(*first, symbols);
  auto second = Parse(printed);
  ASSERT_TRUE(second.ok()) << second.status().ToString() << "\n--- printed:\n"
                           << printed;
  std::string reprinted = PrintOf(*second, symbols);
  EXPECT_EQ(printed, reprinted);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTrip,
    ::testing::Values(
        "(literalize player name team score)",
        "(p simple (player ^team A) --> (halt))",
        "(p vars (player ^name <n> ^team <t>) (player ^name <n>)"
        " --> (write <n> <t> (crlf)))",
        "(p preds (player ^score > 5 ^team <> B ^name { <> Jack <n> })"
        " --> (remove 1))",
        "(p disj (player ^team << A B C >>) --> (halt))",
        "(p negated (player ^name <n>) - (player ^team B ^name <n>)"
        " --> (halt))",
        "(p sets { [player ^name <n> ^team <t>] <P> } :scalar (<n> <t>)"
        " :test ((count <P>) > 1) --> (set-remove <P>))",
        "(p elems { (player ^name <n>) <p> } --> (modify <p> ^team B))",
        "(p agg [player ^score <s>] :test (((sum <s>) > 10) and"
        " ((avg <s>) < 100)) --> (write (min <s>) (max <s>)))",
        "(p rhs (player ^score <s>) --> (bind <x> ((<s> + 1) * 2))"
        " (make player ^score <x>) (if (<x> > 10) (halt) else"
        " (write low (crlf))))",
        "(p loops [player ^team <t> ^name <n>] -->"
        " (foreach <t> ascending (write <t>)"
        "   (foreach <n> descending (write <n>))))",
        "(p notop [player ^score <s>] :test (not ((count <s>) == 0))"
        " --> (halt))"));

TEST(PrinterTest, PrintsStartupFreePrograms) {
  SymbolTable symbols;
  auto program = Parse(
      "(literalize a x)(p r (a ^x 1) --> (halt))(p s (a ^x 2) --> (halt))");
  ASSERT_TRUE(program.ok());
  std::string out = PrintOf(*program, symbols);
  EXPECT_NE(out.find("(p r"), std::string::npos);
  EXPECT_NE(out.find("(p s"), std::string::npos);
  EXPECT_NE(out.find("(literalize a x)"), std::string::npos);
}

TEST(PrinterTest, CompiledRuleAstStillPrints) {
  // The compiler mutates Expr constants in place; printing must still work
  // (the shell's `rules` command prints compiled rules).
  SymbolTable symbols;
  SchemaRegistry schemas;
  RuleCompiler compiler(&symbols, &schemas);
  auto program = Parse(
      "(literalize item price)(p r { [item ^price <p>] <I> }"
      " :test ((count <I>) > 1) --> (write total (sum <p>)))");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(compiler.DeclareLiteralize(program->literalizes[0]).ok());
  auto rule = compiler.Compile(std::move(program->rules[0]));
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  std::string printed = AstPrinter(&symbols).PrintRule((*rule)->ast);
  EXPECT_NE(printed.find(":test ((count <I>) > 1)"), std::string::npos);
  EXPECT_NE(printed.find("(sum <p>)"), std::string::npos);
  // And it reparses.
  EXPECT_TRUE(Parse("(literalize item price)" + printed).ok());
}

}  // namespace
}  // namespace sorel
