// Crash-recovery property test (the ISSUE's acceptance bar): drive a
// session through a fuzz-generated schedule, then simulate a kill at EVERY
// WAL record boundary by truncating a copy of the WAL there and reopening.
// The recovered session must be bit-identical — working memory dump, tag
// counter, conflict set with refraction flags, metric counters, and
// accumulated output — to the live session as of that record. A torn final
// record (cut mid-frame, or CRC-corrupted by a flipped byte) must be
// detected, dropped, and recovery land on the previous boundary's state.
//
// Swept across matchers (Rete with set-oriented rules; TREAT and the plan
// matcher with tuple-only programs) and match_threads {0, 4}.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "fuzz_gen.h"
#include "server/session.h"
#include "server/wal.h"
#include "server_test_util.h"

namespace sorel {
namespace server {
namespace {

using fuzz::FuzzOp;
using fuzz::FuzzRng;
using fuzz::GenProgram;
using fuzz::GenSchedule;
using fuzz::kCats;

/// Applies one schedule op through the session's journaled command surface.
/// Returns false when the op was a no-op (remove against an empty WM) and
/// therefore journaled nothing. Command errors are tolerated only where
/// they are deterministic (runs); makes and removes of live tags must
/// succeed.
bool ApplyOp(Session& session, const FuzzOp& op) {
  switch (op.kind) {
    case FuzzOp::Kind::kMake: {
      auto tag = session.Make(
          "item",
          {{"id", Value::Int(op.id)},
           {"cat",
            Value::Symbol(session.engine().symbols().Intern(kCats[op.cat]))},
           {"val", Value::Int(op.val)}});
      EXPECT_TRUE(tag.ok()) << tag.status().ToString();
      return true;
    }
    case FuzzOp::Kind::kRemove: {
      std::vector<WmePtr> live = session.engine().wm().Snapshot();
      if (live.empty()) return false;
      TimeTag victim = live[op.pick % live.size()]->time_tag();
      Status removed = session.Remove(victim);
      EXPECT_TRUE(removed.ok()) << removed.ToString();
      return true;
    }
    case FuzzOp::Kind::kRun: {
      // A deterministic runtime error (from a generated RHS) recurs
      // identically at recovery, so an error result is still one journaled,
      // replayable command.
      (void)session.Run(op.cap);
      return true;
    }
  }
  return false;
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, got);
  std::fclose(f);
  return out;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

struct Config {
  MatcherKind matcher;
  const char* name;
  bool allow_set;  // Rete takes set-oriented rules; TREAT/plan are
                   // tuple-only by design
  int threads;
};

const Config kConfigs[] = {
    {MatcherKind::kRete, "rete", true, 0},
    {MatcherKind::kRete, "rete", true, 4},
    {MatcherKind::kTreat, "treat", false, 0},
    {MatcherKind::kTreat, "treat", false, 4},
    {MatcherKind::kPlan, "plan", false, 0},
    {MatcherKind::kPlan, "plan", false, 4},
};

constexpr unsigned kSeeds[] = {11, 47};
constexpr int kSteps = 18;

class ServerRecoveryTest : public ::testing::Test {};

TEST_F(ServerRecoveryTest, KillAtEveryRecordBoundaryRecoversBitIdentically) {
  for (const Config& config : kConfigs) {
    for (unsigned seed : kSeeds) {
      FuzzRng rng(seed);
      std::string source = GenProgram(rng, config.allow_set).Source();
      std::vector<FuzzOp> schedule =
          GenSchedule(rng, kSteps, /*with_runs=*/true);
      SCOPED_TRACE(std::string(config.name) + " threads=" +
                   std::to_string(config.threads) + " seed=" +
                   std::to_string(seed) + "\nprogram:\n" + source +
                   "\nschedule:\n" + fuzz::ScheduleToString(schedule));

      SessionOptions options;
      options.matcher = config.matcher;
      options.match_threads = config.threads;

      // Drive the live session, fingerprinting after every journaled
      // command. fingerprints[k] = state once exactly k WAL records exist;
      // outputs[k] = everything written by then (startup included).
      TempDir live_dir;
      std::vector<Fingerprint> fingerprints;
      std::vector<std::string> outputs;
      std::vector<FuzzOp> executed;
      {
        auto session =
            Session::Open("s", source, live_dir.path(), options);
        ASSERT_TRUE(session.ok()) << session.status().ToString();
        std::string out = (*session)->DrainOutput();
        fingerprints.push_back(Capture(**session));
        outputs.push_back(out);
        for (const FuzzOp& op : schedule) {
          uint64_t before = (*session)->wal_stats().records;
          if (!ApplyOp(**session, op)) continue;
          // The boundary↔command mapping the cuts below rely on: every
          // executed command journals exactly one record.
          ASSERT_EQ((*session)->wal_stats().records, before + 1);
          executed.push_back(op);
          out += (*session)->DrainOutput();
          fingerprints.push_back(Capture(**session));
          outputs.push_back(out);
        }
        ASSERT_TRUE((*session)->SyncWal().ok());
      }
      ASSERT_GT(executed.size(), 0u);

      std::string wal_path = live_dir.path() + "/s.wal";
      std::string wal_bytes = ReadFileBytes(wal_path);
      auto wal = ReadWal(wal_path);
      ASSERT_TRUE(wal.ok()) << wal.status().ToString();
      ASSERT_EQ(wal->records.size(), executed.size());
      ASSERT_EQ(wal->torn_bytes, 0u);

      // Kill at every record boundary: cut k records' worth of bytes into
      // a fresh directory and recover.
      for (size_t k = 0; k <= executed.size(); ++k) {
        TempDir cut_dir;
        uint64_t cut =
            k == 0 ? 0 : wal->records[k - 1].end_offset;
        WriteFileBytes(cut_dir.path() + "/s.wal",
                       wal_bytes.substr(0, cut));
        auto recovered =
            Session::Open("s", source, cut_dir.path(), options);
        ASSERT_TRUE(recovered.ok())
            << "boundary " << k << ": " << recovered.status().ToString();
        EXPECT_EQ((*recovered)->recovery().replayed_records, k);
        EXPECT_EQ((*recovered)->recovery().torn_bytes, 0u);
        Fingerprint got = Capture(**recovered);
        EXPECT_TRUE(got == fingerprints[k])
            << "boundary " << k << ":\n"
            << DiffFingerprints(fingerprints[k], got);
        EXPECT_EQ((*recovered)->DrainOutput(), outputs[k])
            << "boundary " << k;

        // From the midpoint, also finish the schedule on the recovered
        // session: the continuation must land exactly where the live
        // session ended (remove picks resolve identically because the
        // states are identical).
        if (k == executed.size() / 2) {
          for (size_t i = k; i < executed.size(); ++i) {
            ASSERT_TRUE(ApplyOp(**recovered, executed[i]))
                << "continuation op " << i;
          }
          Fingerprint done = Capture(**recovered);
          EXPECT_TRUE(done == fingerprints.back())
              << "continuation from boundary " << k << ":\n"
              << DiffFingerprints(fingerprints.back(), done);
        }
      }

      // Torn final record: cut mid-frame. The tail is dropped (short, not
      // corrupt) and recovery lands on the previous boundary.
      {
        TempDir torn_dir;
        WriteFileBytes(torn_dir.path() + "/s.wal",
                       wal_bytes.substr(0, wal_bytes.size() - 3));
        auto recovered =
            Session::Open("s", source, torn_dir.path(), options);
        ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
        EXPECT_EQ((*recovered)->recovery().replayed_records,
                  executed.size() - 1);
        EXPECT_GT((*recovered)->recovery().torn_bytes, 0u);
        EXPECT_FALSE((*recovered)->recovery().crc_mismatch);
        Fingerprint got = Capture(**recovered);
        EXPECT_TRUE(got == fingerprints[executed.size() - 1])
            << DiffFingerprints(fingerprints[executed.size() - 1], got);
        // The torn tail was truncated away at open: a fresh command
        // appends cleanly and the WAL reads back intact.
        ASSERT_TRUE(ApplyOp(**recovered, executed.back()));
        ASSERT_TRUE((*recovered)->SyncWal().ok());
        auto reread = ReadWal(torn_dir.path() + "/s.wal");
        ASSERT_TRUE(reread.ok());
        EXPECT_EQ(reread->torn_bytes, 0u);
        EXPECT_EQ(reread->records.size(), executed.size());
      }

      // Torn final record, CRC flavor: flip a byte inside the last
      // record's payload. The CRC catches it, the record is dropped.
      {
        TempDir crc_dir;
        std::string corrupt = wal_bytes;
        corrupt.back() = static_cast<char>(corrupt.back() ^ 0x01);
        WriteFileBytes(crc_dir.path() + "/s.wal", corrupt);
        auto recovered =
            Session::Open("s", source, crc_dir.path(), options);
        ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
        EXPECT_EQ((*recovered)->recovery().replayed_records,
                  executed.size() - 1);
        EXPECT_TRUE((*recovered)->recovery().crc_mismatch);
        Fingerprint got = Capture(**recovered);
        EXPECT_TRUE(got == fingerprints[executed.size() - 1])
            << DiffFingerprints(fingerprints[executed.size() - 1], got);
      }
    }
  }
}

TEST_F(ServerRecoveryTest, SnapshotMidScheduleThenKillAtEveryTailBoundary) {
  // Same property with a snapshot in the middle: recovery = snapshot +
  // WAL-tail replay. State equivalence (dump, tags, conflict set, output
  // of the tail) is required at every boundary past the snapshot; counters
  // are excluded — a snapshot restore rebuilds match state wholesale, so
  // counter *history* is not replayed (a documented design decision).
  //
  // The schedule avoids conflict-set ties (distinct vals, single rule) so
  // restored selection order is deterministic.
  constexpr const char* kRules = R"(
(literalize item id cat val)
(p grow { (item ^cat A ^val <v>) <i> } -->
  (modify <i> ^cat B ^val (compute <v> + 100))
  (write grew <v> (crlf)))
)";
  for (const Config& config : kConfigs) {
    SCOPED_TRACE(std::string(config.name) + " threads=" +
                 std::to_string(config.threads));
    SessionOptions options;
    options.matcher = config.matcher;
    options.match_threads = config.threads;

    TempDir live_dir;
    std::vector<Fingerprint> fingerprints;  // after each post-snap record
    std::vector<std::string> tail_outputs;
    {
      auto session = Session::Open("s", kRules, live_dir.path(), options);
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      Session& s = **session;
      for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(s.Make("item", {{"id", Value::Int(i)},
                                    {"cat", Value::Symbol(
                                                s.engine().symbols().Intern(
                                                    "A"))},
                                    {"val", Value::Int(10 + i)}})
                        .ok());
      }
      ASSERT_TRUE(s.Run(2).ok());
      ASSERT_TRUE(s.TakeSnapshot().ok());
      auto truncated = ReadWal(s.wal_path());
      ASSERT_TRUE(truncated.ok());
      ASSERT_TRUE(truncated->records.empty());
      (void)s.DrainOutput();

      std::string out;
      fingerprints.push_back(Capture(s));
      tail_outputs.push_back(out);
      auto record = [&](Status status) {
        ASSERT_TRUE(status.ok()) << status.ToString();
        out += s.DrainOutput();
        fingerprints.push_back(Capture(s));
        tail_outputs.push_back(out);
      };
      record(s.Make("item", {{"id", Value::Int(9)},
                             {"cat", Value::Symbol(
                                         s.engine().symbols().Intern("A"))},
                             {"val", Value::Int(50)}})
                 .status());
      record(s.Run(1).status());
      record(s.Run(-1).status());
      ASSERT_TRUE(s.SyncWal().ok());
    }

    std::string wal_bytes = ReadFileBytes(live_dir.path() + "/s.wal");
    std::string snap_bytes = ReadFileBytes(live_dir.path() + "/s.snap");
    auto wal = ReadWal(live_dir.path() + "/s.wal");
    ASSERT_TRUE(wal.ok());
    ASSERT_EQ(wal->records.size() + 1, fingerprints.size());

    for (size_t k = 0; k < fingerprints.size(); ++k) {
      TempDir cut_dir;
      uint64_t cut = k == 0 ? 0 : wal->records[k - 1].end_offset;
      WriteFileBytes(cut_dir.path() + "/s.snap", snap_bytes);
      WriteFileBytes(cut_dir.path() + "/s.wal", wal_bytes.substr(0, cut));
      auto recovered = Session::Open("s", kRules, cut_dir.path(), options);
      ASSERT_TRUE(recovered.ok())
          << "boundary " << k << ": " << recovered.status().ToString();
      EXPECT_TRUE((*recovered)->recovery().had_snapshot);
      EXPECT_EQ((*recovered)->recovery().replayed_records, k);
      Fingerprint got = Capture(**recovered);
      // Counters are excluded from snapshot-based recovery (see above).
      got.counters.clear();
      Fingerprint want = fingerprints[k];
      want.counters.clear();
      EXPECT_TRUE(got == want) << "boundary " << k << ":\n"
                               << DiffFingerprints(want, got);
      EXPECT_EQ((*recovered)->DrainOutput(), tail_outputs[k])
          << "boundary " << k;
    }
  }
}

}  // namespace
}  // namespace server
}  // namespace sorel
