// DIPS (§8) tests, including the exact Figure 6 reproduction.

#include <gtest/gtest.h>

#include <sstream>

#include "dips/dips.h"
#include "tests/test_util.h"

namespace sorel {
namespace {

dips::DipsMatcher* DipsOf(Engine& engine) {
  return static_cast<dips::DipsMatcher*>(&engine.matcher());
}

Engine MakeDipsEngine() {
  EngineOptions options;
  options.matcher = MatcherKind::kDips;
  return Engine(options);
}

// ------------------------------------------------------------- Figure 6 ---
// Rule:   (p rule-1 (E ^name <x> ^salary <s>) [W ^name <x> ^job clerk] ...)
// WM:     1:(W Mike clerk) 2:(E Mike 10000) 3:(W Mike clerk) 4:(E Mike 5000)
// Groups: E tag 2 with W tags {1,3};  E tag 4 with W tags {1,3}.
class Figure6Test : public ::testing::Test {
 protected:
  Figure6Test() : engine_(MakeDipsEngine()) {
    engine_.set_output(&out_);
    MustLoad(engine_,
             "(literalize E name salary)"
             "(literalize W name job)"
             "(p rule-1 (E ^name <x> ^salary <s>)"
             "          [W ^name <x> ^job clerk] --> (write matched))");
    MustMake(engine_, "W", {{"name", engine_.Sym("Mike")},
                            {"job", engine_.Sym("clerk")}});     // tag 1
    MustMake(engine_, "E", {{"name", engine_.Sym("Mike")},
                            {"salary", Value::Int(10000)}});     // tag 2
    MustMake(engine_, "W", {{"name", engine_.Sym("Mike")},
                            {"job", engine_.Sym("clerk")}});     // tag 3
    MustMake(engine_, "E", {{"name", engine_.Sym("Mike")},
                            {"salary", Value::Int(5000)}});      // tag 4
    rule_ = engine_.FindRule("rule-1");
  }

  std::ostringstream out_;
  Engine engine_;
  const CompiledRule* rule_ = nullptr;
};

TEST_F(Figure6Test, CondTablesHoldWmeTags) {
  const dips::CondTable* cond_e = DipsOf(engine_)->cond_table(rule_, 0);
  const dips::CondTable* cond_w = DipsOf(engine_)->cond_table(rule_, 1);
  ASSERT_NE(cond_e, nullptr);
  ASSERT_NE(cond_w, nullptr);
  EXPECT_EQ(cond_e->relation().size(), 2u);  // E tags 2, 4
  EXPECT_EQ(cond_w->relation().size(), 2u);  // W tags 1, 3
  // COND-E schema: tag + the referenced attributes <x>, <s>.
  EXPECT_EQ(cond_e->tag_column(), "t0");
  EXPECT_GE(cond_e->relation().schema().IndexOf("x"), 0);
  EXPECT_GE(cond_e->relation().schema().IndexOf("s"), 0);
  EXPECT_EQ(cond_w->tag_column(), "t1");
  EXPECT_GE(cond_w->relation().schema().IndexOf("x"), 0);
}

TEST_F(Figure6Test, QueryRetrievesTwoGroups) {
  auto sois = DipsOf(engine_)->RetrieveSois(rule_);
  ASSERT_TRUE(sois.ok()) << sois.status().ToString();
  // Four joined tuples, grouped (sorted) by the E tag.
  ASSERT_EQ(sois->size(), 4u);
  EXPECT_EQ(sois->schema().columns(), (std::vector<std::string>{"t0", "t1"}));
  // Group 1: (2,1) (2,3); Group 2: (4,1) (4,3) — exactly Figure 6.
  EXPECT_EQ(sois->At(0, 0), Value::Int(2));
  EXPECT_EQ(sois->At(1, 0), Value::Int(2));
  EXPECT_EQ(sois->At(2, 0), Value::Int(4));
  EXPECT_EQ(sois->At(3, 0), Value::Int(4));
  std::vector<int64_t> w_tags = {sois->At(0, 1).as_int(),
                                 sois->At(1, 1).as_int()};
  std::sort(w_tags.begin(), w_tags.end());
  EXPECT_EQ(w_tags, (std::vector<int64_t>{1, 3}));

  auto summary = DipsOf(engine_)->SoiSummary(rule_);
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary->size(), 2u);  // two SOIs
  EXPECT_EQ(summary->At(0, 1), Value::Int(2));  // each with two rows
  EXPECT_EQ(summary->At(1, 1), Value::Int(2));
}

TEST_F(Figure6Test, SoisEnterConflictSetAndFire) {
  EXPECT_EQ(engine_.conflict_set().size(), 2u);
  EXPECT_EQ(MustRun(engine_), 2);
  EXPECT_EQ(DipsOf(engine_)->last_error().ToString(), "OK");
}

TEST_F(Figure6Test, RemovalShrinksGroups) {
  ASSERT_TRUE(engine_.RemoveWme(3).ok());
  auto summary = DipsOf(engine_)->SoiSummary(rule_);
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary->size(), 2u);
  EXPECT_EQ(summary->At(0, 1), Value::Int(1));
  ASSERT_TRUE(engine_.RemoveWme(1).ok());
  EXPECT_EQ(engine_.conflict_set().size(), 0u);  // W side empty: no match
}

// ------------------------------------------------- DIPS as a full matcher ---

TEST(DipsEngineTest, RunsRegularPrograms) {
  Engine engine = MakeDipsEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p compete (player ^name <n1> ^team A)"
                       "           (player ^name <n2> ^team B) -->"
                       " (write <n1> <n2> (crlf)))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(engine.conflict_set().size(), 6u);
  EXPECT_EQ(MustRun(engine), 6);
}

TEST(DipsEngineTest, NegatedCeViaAntiJoin) {
  Engine engine = MakeDipsEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p lonely (player ^name <n>) - (player ^team B)"
                       " --> (write <n>))");
  MustMake(engine, "player", {{"name", engine.Sym("Ann")},
                              {"team", engine.Sym("A")}});
  EXPECT_EQ(engine.conflict_set().size(), 1u);
  TimeTag blocker = MustMake(engine, "player", {{"name", engine.Sym("Bob")},
                                                {"team", engine.Sym("B")}});
  EXPECT_EQ(engine.conflict_set().size(), 0u);
  ASSERT_TRUE(engine.RemoveWme(blocker).ok());
  EXPECT_EQ(engine.conflict_set().size(), 1u);
}

TEST(DipsEngineTest, NegatedCeWithJoinVariable) {
  Engine engine = MakeDipsEngine();
  std::ostringstream out;
  engine.set_output(&out);
  // A player with no same-name player on team B.
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p unique (player ^name <n> ^team A)"
                       " - (player ^name <n> ^team B) --> (write <n>))");
  MakeFigure1Wm(engine);
  // Jack(A) is blocked by Jack(B); Janice(A) is not.
  EXPECT_EQ(MustRun(engine), 1);
  EXPECT_EQ(out.str(), "Janice");
}

TEST(DipsEngineTest, SetOrientedRulesWork) {
  Engine engine = MakeDipsEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p GroupByTeam [player ^team <t> ^name <n>] -->"
                       " (foreach <t> (write <t> (crlf))"
                       "   (foreach <n> (write <n> (crlf)))))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(MustRun(engine, 1), 1);
  // Same output as the Rete engine (figures_test Figure 4).
  EXPECT_EQ(out.str(), "B\nSue\nJack\nA\nJanice\nJack\n");
}

TEST(DipsEngineTest, RemoveDupsOnDips) {
  Engine engine = MakeDipsEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p RemoveDups"
                       " { [player ^name <n> ^team <t>] <P> }"
                       " :scalar (<n> <t>)"
                       " :test ((count <P>) > 1) -->"
                       " (bind <First> true)"
                       " (foreach <P> descending"
                       "   (if (<First> == true) (bind <First> false)"
                       "    else (remove <P>))))");
  MakeFigure1Wm(engine);
  EXPECT_EQ(MustRun(engine), 1);
  EXPECT_EQ(engine.wm().size(), 4u);
  EXPECT_EQ(engine.wm().Find(3), nullptr);
  EXPECT_NE(engine.wm().Find(5), nullptr);
}

TEST(DipsEngineTest, SwitchTeamsOnDips) {
  Engine engine = MakeDipsEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p SwitchTeams"
                       " { [player ^team A] <ATeam> }"
                       " { [player ^team B] <BTeam> }"
                       " :test ((count <ATeam>) == (count <BTeam>)) -->"
                       " (set-modify <ATeam> ^team B)"
                       " (set-modify <BTeam> ^team A))");
  MustMake(engine, "player",
           {{"name", engine.Sym("a1")}, {"team", engine.Sym("A")}});
  MustMake(engine, "player",
           {{"name", engine.Sym("b1")}, {"team", engine.Sym("B")}});
  EXPECT_EQ(MustRun(engine, 1), 1);
  EXPECT_EQ(engine.wm().size(), 2u);
  EXPECT_EQ(engine.conflict_set().EligibleCount(), 1u);  // ping-pong
}

TEST(DipsEngineTest, NonEqualityJoinPredicate) {
  Engine engine = MakeDipsEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine,
           "(literalize emp name salary)"
           "(p outearns (emp ^name <a> ^salary <s>)"
           "            (emp ^name <b> ^salary > <s>) -->"
           " (write <b> outearns <a> (crlf)))");
  MustMake(engine, "emp", {{"name", engine.Sym("lo")},
                           {"salary", Value::Int(100)}});
  MustMake(engine, "emp", {{"name", engine.Sym("hi")},
                           {"salary", Value::Int(200)}});
  EXPECT_EQ(MustRun(engine), 1);
  EXPECT_EQ(out.str(), "hi outearns lo\n");
}

TEST(DipsEngineTest, RetrieveSoisWithScalarKey) {
  Engine engine = MakeDipsEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p byteam [player ^team <t> ^name <n>]"
                       " :scalar (<t>) --> (halt))");
  MakeFigure1Wm(engine);
  const CompiledRule* rule = engine.FindRule("byteam");
  auto summary = DipsOf(engine)->SoiSummary(rule);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  // Two teams -> two groups, keyed by the <t> variable column.
  ASSERT_EQ(summary->size(), 2u);
  EXPECT_EQ(summary->schema().columns(),
            (std::vector<std::string>{"t", "rows"}));
  int64_t total = summary->At(0, 1).as_int() + summary->At(1, 1).as_int();
  EXPECT_EQ(total, 5);
  auto sois = DipsOf(engine)->RetrieveSois(rule);
  ASSERT_TRUE(sois.ok());
  EXPECT_EQ(sois->size(), 5u);
}

TEST(DipsEngineTest, MatchRelationWithNegatedCe) {
  Engine engine = MakeDipsEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p solo (player ^name <n> ^team A)"
                       " - (player ^name <n> ^team B) --> (halt))");
  MakeFigure1Wm(engine);
  const CompiledRule* rule = engine.FindRule("solo");
  auto match = DipsOf(engine)->MatchRelation(rule);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  // Janice(A) survives the anti-join; Jack(A) is blocked by Jack(B).
  ASSERT_EQ(match->size(), 1u);
  EXPECT_EQ(match->At(0, 0), Value::Int(2));
}

TEST(DipsEngineTest, ExcisedRuleQueriesFail) {
  Engine engine = MakeDipsEngine();
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p r (player) --> (halt))");
  const CompiledRule* rule = engine.FindRule("r");
  // Keep the compiled rule alive past excision via the matcher pointer.
  auto* dips = DipsOf(engine);
  CompiledRule snapshot;
  snapshot.name = rule->name;
  ASSERT_TRUE(engine.ExciseRule("r").ok());
  EXPECT_FALSE(dips->MatchRelation(&snapshot).ok());
}

}  // namespace
}  // namespace sorel
