// Diagnostics quality: errors carry the right code and enough context
// (rule name, line, offending name) to act on.

#include <gtest/gtest.h>

#include <sstream>

#include "tests/test_util.h"

namespace sorel {
namespace {

Status LoadError(const std::string& src) {
  Engine engine;
  Status status = engine.LoadString(std::string(kPlayerSchema) + src);
  EXPECT_FALSE(status.ok()) << "expected failure for: " << src;
  return status;
}

TEST(ErrorsTest, ParseErrorsCarryLineNumbers) {
  Engine engine;
  Status s = engine.LoadString("(literalize m v)\n(p r (m ^v <x)\n");
  ASSERT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(ErrorsTest, CompileErrorsNameTheRule) {
  Status s = LoadError("(p myrule (ghostclass) --> (halt))");
  EXPECT_EQ(s.code(), StatusCode::kCompileError);
  EXPECT_NE(s.message().find("myrule"), std::string::npos);
  EXPECT_NE(s.message().find("ghostclass"), std::string::npos);
}

TEST(ErrorsTest, UnknownAttributeNamesBoth) {
  Status s = LoadError("(p r (player ^salary 3) --> (halt))");
  EXPECT_NE(s.message().find("player"), std::string::npos);
  EXPECT_NE(s.message().find("salary"), std::string::npos);
}

TEST(ErrorsTest, UnboundRhsVariableNamed) {
  Status s = LoadError("(p r (player) --> (write <ghost>))");
  EXPECT_NE(s.message().find("<ghost>"), std::string::npos);
}

TEST(ErrorsTest, SetVarMisuseExplainsOptions) {
  Status s = LoadError("(p r [player ^name <n>] --> (write <n>))");
  EXPECT_NE(s.message().find("<n>"), std::string::npos);
  EXPECT_NE(s.message().find("foreach"), std::string::npos);
}

TEST(ErrorsTest, ScalarClauseUnknownVariable) {
  Status s = LoadError("(p r [player ^name <n>] :scalar (<zz>)"
                       " --> (foreach <n> (write <n>)))");
  EXPECT_NE(s.message().find("<zz>"), std::string::npos);
}

TEST(ErrorsTest, ElementVariableReuse) {
  Status s = LoadError(
      "(p r { (player) <p> } { (player) <p> } --> (remove <p>))");
  EXPECT_EQ(s.code(), StatusCode::kCompileError);
  EXPECT_NE(s.message().find("<p>"), std::string::npos);
}

TEST(ErrorsTest, AggregateOnElementVarExplainsCountOnly) {
  Status s = LoadError(
      "(p r { [player] <P> } :test ((sum <P>) > 1) --> (halt))");
  EXPECT_NE(s.message().find("count"), std::string::npos);
}

TEST(ErrorsTest, RemoveOrdinalOutOfRange) {
  Status s = LoadError("(p r (player) --> (remove 5))");
  EXPECT_NE(s.message().find("ordinal"), std::string::npos);
}

TEST(ErrorsTest, LiteralizeConflictDetected) {
  Engine engine;
  ASSERT_TRUE(engine.LoadString("(literalize m a b)").ok());
  Status s = engine.LoadString("(literalize m b a)");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("re-declared"), std::string::npos);
}

TEST(ErrorsTest, RuntimeErrorNamesTheLine) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  ASSERT_TRUE(engine
                  .LoadString("(literalize m v)\n"
                              "(p bad (m ^v <x>)\n"
                              " --> (bind <y> (<x> / 0)))")
                  .ok());
  ASSERT_TRUE(engine.MakeWme("m", {{"v", Value::Int(1)}}).ok());
  auto r = engine.Run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kRuntimeError);
  EXPECT_NE(r.status().message().find("zero"), std::string::npos);
}

TEST(ErrorsTest, ParallelRhsErrorKeepsLineAndMessage) {
  // The parallel RHS path pre-evaluates member expressions on the pool;
  // the surfaced error must still be the sequential one — same code, same
  // line, same text.
  std::vector<std::string> statuses;
  for (bool parallel : {false, true}) {
    EngineOptions options;
    options.parallel_rhs = parallel;
    Engine engine(options);
    std::ostringstream out;
    engine.set_output(&out);
    ASSERT_TRUE(engine
                    .LoadString("(literalize m v)\n"
                                "(p bad { [m ^v <x>] <P> }"
                                " :test ((count <P>) >= 2)\n"
                                " --> (foreach <P> (modify <P> ^v"
                                " (<x> / 0))))")
                    .ok());
    ASSERT_TRUE(engine.MakeWme("m", {{"v", Value::Int(1)}}).ok());
    ASSERT_TRUE(engine.MakeWme("m", {{"v", Value::Int(2)}}).ok());
    auto r = engine.Run();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kRuntimeError);
    EXPECT_NE(r.status().message().find("zero"), std::string::npos)
        << r.status().ToString();
    statuses.push_back(r.status().ToString());
  }
  EXPECT_EQ(statuses[0], statuses[1]);
}

TEST(ErrorsTest, StatusToStringFormats) {
  EXPECT_EQ(Status::CompileError("x").ToString(), "CompileError: x");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

// Match-time errors happen inside WM-change callbacks, which have no Status
// channel; the engine must surface the stashed error from Run instead of
// silently freezing the affected instantiations.

TEST(ErrorsTest, SNodeTestErrorSurfacesFromRun) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  ASSERT_TRUE(engine
                  .LoadString(std::string(kPlayerSchema) +
                              "(p pair { [player ^name <n>] <P> }"
                              " :test ((sum <n>) > 5) --> (write fire))")
                  .ok());
  // sum over a symbol domain: runtime type error inside the S-node.
  ASSERT_TRUE(engine.MakeWme("player", {{"name", engine.Sym("alice")}}).ok());
  auto r = engine.Run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("sum"), std::string::npos)
      << r.status().ToString();
}

TEST(ErrorsTest, DipsCondTableErrorSurfacesFromRun) {
  EngineOptions options;
  options.matcher = MatcherKind::kDips;
  Engine engine(options);
  std::ostringstream out;
  engine.set_output(&out);
  ASSERT_TRUE(engine
                  .LoadString(std::string(kPlayerSchema) +
                              "(p pair { [player ^name <n>] <P> }"
                              " :test ((sum <n>) > 5) --> (write fire))")
                  .ok());
  ASSERT_TRUE(engine.MakeWme("player", {{"name", engine.Sym("alice")}}).ok());
  auto r = engine.Run();
  ASSERT_FALSE(r.ok());
}

TEST(ErrorsTest, RunParallelSurfacesMatchErrors) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  ASSERT_TRUE(engine
                  .LoadString(std::string(kPlayerSchema) +
                              "(p pair { [player ^name <n>] <P> }"
                              " :test ((sum <n>) > 5) --> (write fire))")
                  .ok());
  ASSERT_TRUE(engine.MakeWme("player", {{"name", engine.Sym("alice")}}).ok());
  EXPECT_FALSE(engine.RunParallel().ok());
}

}  // namespace
}  // namespace sorel
