// The observability layer: MetricRegistry views, sharded timers, the
// TraceSink event stream, the JSON helpers, and their integration with the
// engine (Profile, trace events from a real run, registry-backed
// match_stats).

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace sorel {
namespace {

// ------------------------------------------------------------- registry ---

TEST(MetricRegistry, SumsDuplicateNamesAcrossOwners) {
  obs::MetricRegistry reg;
  uint64_t a = 3, b = 4;
  int owner_a = 0, owner_b = 0;
  reg.RegisterCounter(&owner_a, "x.count", [&a] { return a; });
  reg.RegisterCounter(&owner_b, "x.count", [&b] { return b; });
  reg.RegisterCounter(&owner_a, "x.only_a", [] { return uint64_t{9}; });
  std::map<std::string, uint64_t> snap = reg.SnapshotCounters();
  EXPECT_EQ(snap["x.count"], 7u);
  EXPECT_EQ(snap["x.only_a"], 9u);
  // Names are deduplicated.
  std::vector<std::string> names = reg.CounterNames();
  EXPECT_EQ(names, (std::vector<std::string>{"x.count", "x.only_a"}));

  reg.Unregister(&owner_b);
  EXPECT_EQ(reg.SnapshotCounters()["x.count"], 3u);
}

TEST(MetricRegistry, ResetAllRunsHooksAndClearsTimers) {
  obs::MetricRegistry reg;
  uint64_t v = 42;
  int owner = 0;
  reg.RegisterCounter(&owner, "v", [&v] { return v; });
  reg.RegisterReset(&owner, [&v] { v = 0; });
  obs::Timer* timer = reg.GetOrCreateTimer("t");
  timer->Record(1000);
  ASSERT_EQ(reg.SnapshotTimers()["t"].count, 1u);
  reg.ResetAll();
  EXPECT_EQ(reg.SnapshotCounters()["v"], 0u);
  EXPECT_EQ(reg.SnapshotTimers()["t"].count, 0u);
  // The timer pointer stays valid after a reset.
  timer->Record(2000);
  EXPECT_EQ(reg.SnapshotTimers()["t"].count, 1u);
}

TEST(MetricRegistry, GaugesReadLiveState) {
  obs::MetricRegistry reg;
  double size = 5;
  int owner = 0;
  reg.RegisterGauge(&owner, "g.size", [&size] { return size; });
  EXPECT_EQ(reg.SnapshotGauges()["g.size"], 5);
  size = 11;
  EXPECT_EQ(reg.SnapshotGauges()["g.size"], 11);
}

// --------------------------------------------------------------- timers ---

TEST(Timer, SnapshotFoldsRecordsFromManyThreads) {
  obs::Timer timer;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&timer] {
      for (int i = 0; i < kPerThread; ++i) timer.Record(1 << 10);
    });
  }
  for (std::thread& w : workers) w.join();
  obs::TimerSnapshot snap = timer.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.total_ns,
            static_cast<uint64_t>(kThreads * kPerThread) * (1 << 10));
}

TEST(Timer, HistogramBucketsAreLog2) {
  obs::Timer timer;
  timer.Record(1);     // bucket 1 (2^0 <= 1 < 2^1)
  timer.Record(1000);  // ~2^10
  timer.Record(1'000'000);  // ~2^20
  obs::TimerSnapshot snap = timer.Snapshot();
  uint64_t populated = 0;
  for (uint64_t b : snap.buckets) populated += (b != 0) ? 1 : 0;
  EXPECT_EQ(populated, 3u);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_GT(snap.ApproxP99Us(), 0.0);
  EXPECT_NEAR(snap.MeanUs(), (1.0 + 1000.0 + 1'000'000.0) / 3 / 1000, 1e-6);
}

TEST(ScopedTimer, NullTimerIsANoOp) {
  { obs::ScopedTimer t(nullptr); }  // must not crash or record anywhere
  obs::Timer timer;
  { obs::ScopedTimer t(&timer); }
  EXPECT_EQ(timer.Snapshot().count, 1u);
}

// ---------------------------------------------------------------- trace ---

TEST(TraceSink, JsonLinesFormatIsParseableAndValid) {
  std::ostringstream out;
  obs::JsonLinesTraceSink sink(&out);
  obs::Tracer tracer;
  tracer.set_sink(&sink);
  ASSERT_TRUE(tracer.enabled());
  tracer.Emit(obs::TraceEvent("fire").Str("rule", "r\"1").Num("rows", 2));
  tracer.Emit(obs::TraceEvent("cycle_end").Num("cycle", 0));
  std::istringstream lines(out.str());
  std::string line;
  uint64_t expected_seq = 1;
  while (std::getline(lines, line)) {
    Result<obs::JsonValue> doc = obs::ParseJson(line);
    ASSERT_TRUE(doc.ok()) << line;
    ASSERT_TRUE(obs::ValidateTraceLine(*doc).ok()) << line;
    EXPECT_EQ(doc->Find("seq")->number, static_cast<double>(expected_seq));
    ++expected_seq;
  }
  EXPECT_EQ(expected_seq, 3u);
}

TEST(TraceSink, TextFormatIsHumanReadable) {
  std::ostringstream out;
  obs::TextTraceSink sink(&out);
  obs::Tracer tracer;
  tracer.set_sink(&sink);
  tracer.Emit(obs::TraceEvent("fire").Str("rule", "r1").Num("rows", 2));
  EXPECT_EQ(out.str(), "[1] fire rule=r1 rows=2\n");
}

TEST(Tracer, DisabledTracerDropsEvents) {
  obs::Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.Emit(obs::TraceEvent("fire"));  // no sink: must be safe
}

// ----------------------------------------------------------------- json ---

TEST(Json, EscapeAndNumberFormats) {
  EXPECT_EQ(obs::JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::JsonEscape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(obs::JsonNumber(42), "42");
  EXPECT_EQ(obs::JsonNumber(2.5), "2.5");
}

TEST(Json, ParseRoundTrip) {
  Result<obs::JsonValue> doc = obs::ParseJson(
      R"({"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5e1}})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("a")->number, 1);
  ASSERT_TRUE(doc->Find("b")->is_array());
  EXPECT_EQ(doc->Find("b")->items.size(), 3u);
  EXPECT_EQ(doc->Find("b")->items[2].string, "x\n");
  EXPECT_EQ(doc->Find("c")->Find("d")->number, -25);
}

TEST(Json, ParseErrorsCarryOffset) {
  Result<obs::JsonValue> doc = obs::ParseJson("{\"a\": }");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().ToString().find("json parse error"),
            std::string::npos);
  EXPECT_FALSE(obs::ParseJson("").ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\": 1} trailing").ok());
}

TEST(Json, ValidateBenchReportAcceptsRealReportOutput) {
  bench::JsonReport report("demo");
  report.Config("n", 4);
  report.BeginRow("row \"quoted\"");
  report.Value("x", 1.5);
  std::ostringstream out;
  report.WriteTo(out);
  Result<obs::JsonValue> doc = obs::ParseJson(out.str());
  ASSERT_TRUE(doc.ok()) << out.str();
  EXPECT_TRUE(obs::ValidateBenchReport(*doc).ok());
  // A row without a label must be rejected.
  Result<obs::JsonValue> bad = obs::ParseJson(
      R"({"bench": "b", "config": {}, "results": [{"x": 1}]})");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(obs::ValidateBenchReport(*bad).ok());
}

// ----------------------------------------------------- engine integration ---

constexpr const char* kSeating =
    "(literalize player name team score)"
    "(p cap { (player ^score > 4) <p> } --> (modify <p> ^score 4))"
    "(p zero-team { [player ^team <t> ^score <s>] <P> } :scalar (<t>)"
    " :test ((sum <s>) > 8) --> (set-modify <P> ^score 0))";

void LoadSeatingWorkload(Engine& engine) {
  MustLoad(engine, kSeating);
  static const char* kTeams[] = {"A", "B", "C"};
  for (int i = 0; i < 12; ++i) {
    MustMake(engine, "player", {{"name", engine.Sym("p" + std::to_string(i))},
                                {"team", engine.Sym(kTeams[i % 3])},
                                {"score", Value::Int(5)}});
  }
  MustRun(engine, 24);
}

TEST(EngineObs, ProfileReportsPhaseAndRuleTimers) {
  EngineOptions opts;
  opts.enable_timers = true;
  Engine engine(opts);
  std::ostringstream sink;
  engine.set_output(&sink);
  LoadSeatingWorkload(engine);
  ASSERT_GT(engine.run_stats().firings, 0u);

  std::map<std::string, obs::TimerSnapshot> timers =
      engine.metrics().SnapshotTimers();
  EXPECT_GT(timers["phase.match"].count, 0u);
  EXPECT_GT(timers["phase.select"].count, 0u);
  EXPECT_GT(timers["phase.act"].count, 0u);
  EXPECT_GT(timers["rule.cap"].count, 0u);

  std::ostringstream profile;
  engine.Profile(profile);
  EXPECT_NE(profile.str().find("phase.match"), std::string::npos);
  EXPECT_NE(profile.str().find("phase.select"), std::string::npos);
  EXPECT_NE(profile.str().find("phase.act"), std::string::npos);
  EXPECT_NE(profile.str().find("rule.cap"), std::string::npos);
  EXPECT_NE(profile.str().find("rule.zero-team"), std::string::npos);
  // The arena/memory gauges print as a "memory" section.
  EXPECT_NE(profile.str().find("memory"), std::string::npos);
  EXPECT_NE(profile.str().find("rete.token_arena_bytes"), std::string::npos);
  EXPECT_NE(profile.str().find("rete.alpha_bytes"), std::string::npos);
  EXPECT_NE(profile.str().find("wm.arena_bytes"), std::string::npos);
}

TEST(EngineObs, MemoryGaugesTrackArenas) {
  Engine engine;
  std::ostringstream sink;
  engine.set_output(&sink);
  LoadSeatingWorkload(engine);
  std::map<std::string, double> gauges = engine.metrics().SnapshotGauges();
  // WMEs were allocated from the slab pool and the Rete matcher built
  // alpha columns and token arenas for the seating rules.
  EXPECT_GT(gauges["wm.arena_bytes"], 0.0);
  EXPECT_GT(gauges["rete.alpha_bytes"], 0.0);
  EXPECT_GT(gauges["rete.token_arena_bytes"], 0.0);
  // Even with timers off, Profile surfaces the memory section.
  std::ostringstream profile;
  engine.Profile(profile);
  EXPECT_NE(profile.str().find("wm.arena_bytes"), std::string::npos);
}

TEST(EngineObs, ProfileWithoutTimersPointsAtTheFlag) {
  Engine engine;
  std::ostringstream profile;
  engine.Profile(profile);
  EXPECT_NE(profile.str().find("enable_timers"), std::string::npos);
  // And no timers exist at all: the hot paths never installed any.
  EXPECT_TRUE(engine.metrics().SnapshotTimers().empty());
}

TEST(EngineObs, RunEmitsWellFormedTraceStream) {
  std::ostringstream events;
  obs::JsonLinesTraceSink sink(&events);
  EngineOptions opts;
  opts.trace_sink = &sink;
  Engine engine(opts);
  std::ostringstream out;
  engine.set_output(&out);
  LoadSeatingWorkload(engine);
  ASSERT_GT(engine.run_stats().firings, 0u);

  std::map<std::string, int> by_type;
  std::istringstream lines(events.str());
  std::string line;
  while (std::getline(lines, line)) {
    Result<obs::JsonValue> doc = obs::ParseJson(line);
    ASSERT_TRUE(doc.ok()) << line;
    ASSERT_TRUE(obs::ValidateTraceLine(*doc).ok()) << line;
    ++by_type[doc->Find("ev")->string];
  }
  uint64_t firings = engine.run_stats().firings;
  EXPECT_EQ(by_type["cycle_begin"], static_cast<int>(firings));
  EXPECT_EQ(by_type["select"], static_cast<int>(firings));
  EXPECT_EQ(by_type["fire"], static_cast<int>(firings));
  EXPECT_EQ(by_type["rhs_apply"], static_cast<int>(firings));
  EXPECT_EQ(by_type["cycle_end"], static_cast<int>(firings));
  EXPECT_GT(by_type["batch_commit"], 0);  // batched_wm defaults on
}

TEST(EngineObs, MatchStatsSnapshotAgreesWithComponents) {
  Engine engine;
  std::ostringstream sink;
  engine.set_output(&sink);
  LoadSeatingWorkload(engine);
  Engine::MatchStats s = engine.match_stats();
  // The registry views must read the exact component counters.
  EXPECT_EQ(s.rete.join_attempts,
            engine.rete_matcher()->stats().join_attempts);
  EXPECT_EQ(s.select.selects, engine.conflict_set().stats().selects);
  EXPECT_EQ(s.wm.adds, engine.wm().stats().adds);
  EXPECT_EQ(s.snode.test_evals, engine.snode("zero-team")->stats().test_evals);
  EXPECT_GT(s.rete.join_attempts, 0u);
  EXPECT_GT(s.snode.test_evals, 0u);
}

TEST(EngineObs, SetTraceSinkTogglesAtRunTime) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, kSeating);
  std::ostringstream events;
  obs::JsonLinesTraceSink sink(&events);
  engine.set_trace_sink(&sink);
  MustMake(engine, "player", {{"name", engine.Sym("a")},
                              {"team", engine.Sym("A")},
                              {"score", Value::Int(9)}});
  MustRun(engine, 2);
  EXPECT_FALSE(events.str().empty());
  size_t seen = events.str().size();
  engine.set_trace_sink(nullptr);
  MustMake(engine, "player", {{"name", engine.Sym("b")},
                              {"team", engine.Sym("B")},
                              {"score", Value::Int(9)}});
  MustRun(engine, 2);
  EXPECT_EQ(events.str().size(), seen);
}

}  // namespace
}  // namespace sorel
