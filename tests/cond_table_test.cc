// DIPS COND-table internals (§8.1/§8.2): schemas, variable columns,
// predicate columns, and tag maintenance.

#include <gtest/gtest.h>

#include "dips/cond_table.h"
#include "lang/compiler.h"
#include "lang/parser.h"
#include "wm/working_memory.h"

namespace sorel {
namespace dips {
namespace {

class CondTableTest : public ::testing::Test {
 protected:
  CondTableTest() : compiler_(&symbols_, &schemas_), wm_(&schemas_, &symbols_) {}

  const CompiledRule* CompileOne(const std::string& src) {
    auto program = Parse(
        "(literalize emp name dept salary)(literalize dept name floor)" +
        src);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    for (const LiteralizeAst& lit : program->literalizes) {
      EXPECT_TRUE(compiler_.DeclareLiteralize(lit).ok());
    }
    auto rule = compiler_.Compile(std::move(program->rules[0]));
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    rules_.push_back(std::move(*rule));
    return rules_.back().get();
  }

  WmePtr MakeEmp(const char* name, const char* dept, int salary) {
    auto r = wm_.Make(symbols_.Intern("emp"),
                      {{symbols_.Intern("name"), Sym(name)},
                       {symbols_.Intern("dept"), Sym(dept)},
                       {symbols_.Intern("salary"), Value::Int(salary)}});
    EXPECT_TRUE(r.ok());
    return *r;
  }

  Value Sym(std::string_view s) { return Value::Symbol(symbols_.Intern(s)); }

  SymbolTable symbols_;
  SchemaRegistry schemas_;
  RuleCompiler compiler_;
  WorkingMemory wm_;
  std::vector<CompiledRulePtr> rules_;
};

TEST_F(CondTableTest, PositiveCeSchemaHasTagAndVarColumns) {
  const CompiledRule* rule = CompileOne(
      "(p r (emp ^name <x> ^salary <s>) --> (write <x>))");
  auto table = CondTable::Create(rule, 0);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->tag_column(), "t0");
  EXPECT_GE(table->relation().schema().IndexOf("x"), 0);
  EXPECT_GE(table->relation().schema().IndexOf("s"), 0);
  // Variable columns are sorted for deterministic schemas.
  EXPECT_EQ(table->var_columns().front().first, "s");
}

TEST_F(CondTableTest, InsertAndRemoveByTag) {
  const CompiledRule* rule =
      CompileOne("(p r (emp ^name <x>) --> (write <x>))");
  auto table = CondTable::Create(rule, 0);
  ASSERT_TRUE(table.ok());
  WmePtr a = MakeEmp("ann", "eng", 100);
  WmePtr b = MakeEmp("bob", "ops", 90);
  ASSERT_TRUE(table->Accepts(*a));
  ASSERT_TRUE(table->Insert(*a).ok());
  ASSERT_TRUE(table->Insert(*b).ok());
  EXPECT_EQ(table->relation().size(), 2u);
  // Row carries the tag and the binding.
  EXPECT_EQ(table->relation().At(0, 0), Value::Int(a->time_tag()));
  int x_col = table->relation().schema().IndexOf("x");
  EXPECT_EQ(table->relation().At(0, x_col), Sym("ann"));
  table->RemoveTag(a->time_tag());
  EXPECT_EQ(table->relation().size(), 1u);
}

TEST_F(CondTableTest, AlphaTestsFilterInserts) {
  const CompiledRule* rule =
      CompileOne("(p r (emp ^dept eng ^salary > 50) --> (write hit))");
  auto table = CondTable::Create(rule, 0);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->Accepts(*MakeEmp("a", "eng", 100)));
  EXPECT_FALSE(table->Accepts(*MakeEmp("b", "ops", 100)));
  EXPECT_FALSE(table->Accepts(*MakeEmp("c", "eng", 10)));
}

TEST_F(CondTableTest, NonEqualityJoinGetsPredColumn) {
  const CompiledRule* rule = CompileOne(
      "(p r (emp ^name <x> ^salary <s>) (emp ^salary > <s>)"
      " --> (write <x>))");
  auto table = CondTable::Create(rule, 1);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->pred_columns().size(), 1u);
  const CondTable::PredColumn& pc = table->pred_columns().front();
  EXPECT_EQ(pc.ref_var, "s");
  EXPECT_EQ(pc.pred, TestPred::kGt);
  EXPECT_FALSE(pc.is_eq);
  EXPECT_GE(table->relation().schema().IndexOf(pc.column), 0);
}

TEST_F(CondTableTest, NegatedCeColumnsComeFromJoinTests) {
  const CompiledRule* rule = CompileOne(
      "(p r (emp ^dept <d>) - (dept ^name <d> ^floor > 100)"
      " --> (write <d>))");
  auto table = CondTable::Create(rule, 1);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->tag_column(), "tneg1");
  ASSERT_EQ(table->pred_columns().size(), 1u);
  EXPECT_TRUE(table->pred_columns().front().is_eq);
  EXPECT_EQ(table->pred_columns().front().ref_var, "d");
}

}  // namespace
}  // namespace dips
}  // namespace sorel
