#include <gtest/gtest.h>

#include "lang/compiler.h"
#include "lang/lexer.h"
#include "lang/parser.h"

namespace sorel {
namespace {

// ----------------------------------------------------------------- lexer ---

std::vector<Tok> MustLex(std::string_view src) {
  auto r = Lex(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Tok>{};
}

TEST(LexerTest, Brackets) {
  auto toks = MustLex("( ) [ ] { }");
  ASSERT_EQ(toks.size(), 7u);  // incl. kEnd
  EXPECT_EQ(toks[0].kind, TokKind::kLParen);
  EXPECT_EQ(toks[1].kind, TokKind::kRParen);
  EXPECT_EQ(toks[2].kind, TokKind::kLBracket);
  EXPECT_EQ(toks[3].kind, TokKind::kRBracket);
  EXPECT_EQ(toks[4].kind, TokKind::kLBrace);
  EXPECT_EQ(toks[5].kind, TokKind::kRBrace);
}

TEST(LexerTest, VariablesAndPredicates) {
  auto toks = MustLex("<x> < <= <> << >> > >= = ==");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, TokKind::kVariable);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].kind, TokKind::kLt);
  EXPECT_EQ(toks[2].kind, TokKind::kLe);
  EXPECT_EQ(toks[3].kind, TokKind::kNe);
  EXPECT_EQ(toks[4].kind, TokKind::kDLAngle);
  EXPECT_EQ(toks[5].kind, TokKind::kDRAngle);
  EXPECT_EQ(toks[6].kind, TokKind::kGt);
  EXPECT_EQ(toks[7].kind, TokKind::kGe);
  EXPECT_EQ(toks[8].kind, TokKind::kEq);
  EXPECT_EQ(toks[9].kind, TokKind::kEq);
}

TEST(LexerTest, NumbersAndSymbols) {
  auto toks = MustLex("42 -7 3.5 -2.5e3 player -foo + -->");
  EXPECT_EQ(toks[0].kind, TokKind::kInt);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokKind::kInt);
  EXPECT_EQ(toks[1].int_value, -7);
  EXPECT_EQ(toks[2].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 3.5);
  EXPECT_EQ(toks[3].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ(toks[3].float_value, -2500.0);
  EXPECT_EQ(toks[4].kind, TokKind::kSymbol);
  EXPECT_EQ(toks[4].text, "player");
  EXPECT_EQ(toks[5].kind, TokKind::kSymbol);
  EXPECT_EQ(toks[5].text, "-foo");
  EXPECT_EQ(toks[6].kind, TokKind::kSymbol);
  EXPECT_EQ(toks[6].text, "+");
  EXPECT_EQ(toks[7].kind, TokKind::kArrow);
}

TEST(LexerTest, AttributesCommentsQuotes) {
  auto toks = MustLex("^name ; a comment\n |two words| \"quoted\"");
  EXPECT_EQ(toks[0].kind, TokKind::kAttr);
  EXPECT_EQ(toks[0].text, "name");
  EXPECT_EQ(toks[1].kind, TokKind::kSymbol);
  EXPECT_EQ(toks[1].text, "two words");
  EXPECT_EQ(toks[2].kind, TokKind::kSymbol);
  EXPECT_EQ(toks[2].text, "quoted");
}

TEST(LexerTest, UnterminatedVariableFails) {
  EXPECT_FALSE(Lex("<abc").ok());
}

TEST(LexerTest, TracksLineNumbers) {
  auto toks = MustLex("a\nb");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
}

// ---------------------------------------------------------------- parser ---

ProgramAst MustParse(std::string_view src) {
  auto r = Parse(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : ProgramAst{};
}

TEST(ParserTest, Literalize) {
  auto p = MustParse("(literalize player name team)");
  ASSERT_EQ(p.literalizes.size(), 1u);
  EXPECT_EQ(p.literalizes[0].cls, "player");
  EXPECT_EQ(p.literalizes[0].attrs,
            (std::vector<std::string>{"name", "team"}));
}

TEST(ParserTest, RegularRule) {
  auto p = MustParse(
      "(literalize player name team)"
      "(p compete (player ^name <n1> ^team A) (player ^name <n2> ^team B)"
      " --> (write <n1> <n2> (crlf)))");
  ASSERT_EQ(p.rules.size(), 1u);
  const RuleAst& r = p.rules[0];
  EXPECT_EQ(r.name, "compete");
  ASSERT_EQ(r.conditions.size(), 2u);
  EXPECT_FALSE(r.conditions[0].set_oriented);
  EXPECT_EQ(r.conditions[0].cls, "player");
  ASSERT_EQ(r.conditions[0].attrs.size(), 2u);
  EXPECT_EQ(r.conditions[0].attrs[0].attr, "name");
  ASSERT_EQ(r.actions.size(), 1u);
  EXPECT_EQ(r.actions[0]->kind, Action::Kind::kWrite);
  EXPECT_EQ(r.actions[0]->write_args.size(), 3u);
  EXPECT_EQ(r.actions[0]->write_args[2]->kind, Expr::Kind::kCrlf);
}

TEST(ParserTest, SetOrientedCeAndElementVar) {
  auto p = MustParse(
      "(p r { [player ^team A] <ATeam> } :test ((count <ATeam>) > 1)"
      " --> (set-remove <ATeam>))");
  const RuleAst& r = p.rules[0];
  ASSERT_EQ(r.conditions.size(), 1u);
  EXPECT_TRUE(r.conditions[0].set_oriented);
  EXPECT_EQ(r.conditions[0].elem_var, "ATeam");
  ASSERT_NE(r.test, nullptr);
  EXPECT_EQ(r.test->kind, Expr::Kind::kBinary);
  EXPECT_EQ(r.test->bin_op, BinOp::kGt);
  EXPECT_EQ(r.test->lhs->kind, Expr::Kind::kAggregate);
  EXPECT_EQ(r.test->lhs->agg_op, AggOp::kCount);
  EXPECT_EQ(r.test->lhs->var, "ATeam");
}

TEST(ParserTest, ScalarClause) {
  auto p = MustParse(
      "(p r [player ^name <n> ^team <t>] :scalar (<n> <t>) --> (halt))");
  EXPECT_EQ(p.rules[0].scalar_vars, (std::vector<std::string>{"n", "t"}));
}

TEST(ParserTest, NegatedCondition) {
  auto p = MustParse("(p r (player ^name <n>) - (player ^team B) --> (halt))");
  ASSERT_EQ(p.rules[0].conditions.size(), 2u);
  EXPECT_TRUE(p.rules[0].conditions[1].negated);
}

TEST(ParserTest, DisjunctionAndConjunction) {
  auto p = MustParse(
      "(p r (player ^team << A B >> ^name { <> Jack <n> }) --> (halt))");
  const auto& attrs = p.rules[0].conditions[0].attrs;
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].kind, AttrTest::Kind::kDisjunction);
  EXPECT_EQ(attrs[0].disjunction_texts,
            (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(attrs[1].kind, AttrTest::Kind::kAtoms);
  ASSERT_EQ(attrs[1].atoms.size(), 2u);
  EXPECT_EQ(attrs[1].atoms[0].first, TestPred::kNe);
  EXPECT_EQ(attrs[1].atoms[1].first, TestPred::kEq);
  EXPECT_EQ(attrs[1].atoms[1].second.var, "n");
}

TEST(ParserTest, ForeachWithOrderAndNesting) {
  auto p = MustParse(
      "(p r [player ^team <t> ^name <n>] --> "
      "(foreach <t> (write <t>) (foreach <n> descending (write <n>))))");
  const Action& outer = *p.rules[0].actions[0];
  EXPECT_EQ(outer.kind, Action::Kind::kForeach);
  EXPECT_EQ(outer.var, "t");
  EXPECT_EQ(outer.order, Action::Order::kDefault);
  ASSERT_EQ(outer.body.size(), 2u);
  const Action& inner = *outer.body[1];
  EXPECT_EQ(inner.kind, Action::Kind::kForeach);
  EXPECT_EQ(inner.order, Action::Order::kDescending);
}

TEST(ParserTest, IfElse) {
  auto p = MustParse(
      "(p r { [player ^name <n>] <P> } --> "
      "(bind <First> true)"
      "(foreach <P> descending"
      "  (if (<First> == true) (bind <First> false) else (remove <P>))))");
  const Action& foreach_action = *p.rules[0].actions[1];
  const Action& if_action = *foreach_action.body[0];
  EXPECT_EQ(if_action.kind, Action::Kind::kIf);
  ASSERT_EQ(if_action.body.size(), 1u);
  EXPECT_EQ(if_action.body[0]->kind, Action::Kind::kBind);
  ASSERT_EQ(if_action.else_body.size(), 1u);
  EXPECT_EQ(if_action.else_body[0]->kind, Action::Kind::kRemove);
}

TEST(ParserTest, MultiTargetRemoveExpands) {
  auto p = MustParse(
      "(p r { (player) <a> } { (player) <b> } --> (remove <a> <b>))");
  EXPECT_EQ(p.rules[0].actions.size(), 2u);
}

TEST(ParserTest, InfixChainIsLeftAssociative) {
  auto p = MustParse("(p r (player) --> (bind <x> (1 + 2 * 3)))");
  const Expr& e = *p.rules[0].actions[0]->expr;
  // ((1 + 2) * 3): no precedence, left-assoc (like OPS5 compute).
  EXPECT_EQ(e.bin_op, BinOp::kMul);
  EXPECT_EQ(e.lhs->bin_op, BinOp::kAdd);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("(frobnicate)").ok());
  EXPECT_FALSE(Parse("(p r (player ^name <n>)").ok());          // unclosed
  EXPECT_FALSE(Parse("(p r (player) --> (explode))").ok());     // bad action
  EXPECT_FALSE(Parse("(p r (player ^team << <v> >>) --> (halt))").ok());
}

// -------------------------------------------------------------- compiler ---

class CompilerTest : public ::testing::Test {
 protected:
  CompilerTest() : compiler_(&symbols_, &schemas_) {}

  Result<CompiledRulePtr> CompileRule(std::string_view src) {
    auto program = Parse(src);
    if (!program.ok()) return program.status();
    for (const LiteralizeAst& lit : program->literalizes) {
      Status s = compiler_.DeclareLiteralize(lit);
      if (!s.ok()) return s;
    }
    if (program->rules.empty()) {
      return Status::InvalidArgument("no rule in source");
    }
    return compiler_.Compile(std::move(program->rules[0]));
  }

  static constexpr const char* kPrelude =
      "(literalize player name team) ";

  SymbolTable symbols_;
  SchemaRegistry schemas_;
  RuleCompiler compiler_;
};

TEST_F(CompilerTest, JoinTestDerivation) {
  auto r = CompileRule(
      std::string(kPrelude) +
      "(p pair (player ^name <n> ^team A) (player ^name <n> ^team B)"
      " --> (halt))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const CompiledRule& rule = **r;
  EXPECT_FALSE(rule.has_set);
  EXPECT_EQ(rule.num_positive, 2);
  ASSERT_EQ(rule.conditions.size(), 2u);
  EXPECT_EQ(rule.conditions[0].const_tests.size(), 1u);  // team A
  EXPECT_EQ(rule.conditions[0].join_tests.size(), 0u);
  ASSERT_EQ(rule.conditions[1].join_tests.size(), 1u);
  EXPECT_EQ(rule.conditions[1].join_tests[0].other_token_pos, 0);
  const VarInfo* n = rule.FindVar("n");
  ASSERT_NE(n, nullptr);
  EXPECT_FALSE(n->set_oriented);
  EXPECT_EQ(n->occurrences.size(), 2u);
}

TEST_F(CompilerTest, IntraTestWithinOneCe) {
  auto r = CompileRule(std::string(kPrelude) +
                       "(p same (player ^name <x> ^team <x>) --> (halt))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->conditions[0].intra_tests.size(), 1u);
}

TEST_F(CompilerTest, SetClassification) {
  auto r = CompileRule(
      std::string(kPrelude) +
      "(p g [player ^team <t> ^name <n>] :scalar (<t>)"
      " --> (foreach <n> (write <n>)))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const CompiledRule& rule = **r;
  EXPECT_TRUE(rule.has_set);
  EXPECT_FALSE(rule.FindVar("t")->set_oriented);  // :scalar
  EXPECT_TRUE(rule.FindVar("n")->set_oriented);
  EXPECT_EQ(rule.key_token_positions.size(), 0u);
  ASSERT_EQ(rule.key_scalars.size(), 1u);
  EXPECT_EQ(rule.key_scalars[0].first, 0);
  EXPECT_EQ(rule.key_scalars[0].second, 1);  // team field
}

TEST_F(CompilerTest, MixedCePartitionKey) {
  auto r = CompileRule(
      std::string(kPrelude) +
      "(p m [player ^name <n> ^team A] (player ^name <n2> ^team B)"
      " --> (write <n2>))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const CompiledRule& rule = **r;
  // Variable occurring in a regular CE is scalar.
  EXPECT_FALSE(rule.FindVar("n2")->set_oriented);
  EXPECT_TRUE(rule.FindVar("n")->set_oriented);
  EXPECT_EQ(rule.key_token_positions, (std::vector<int>{1}));
}

TEST_F(CompilerTest, VariableSharedBetweenSetAndRegularIsScalar) {
  auto r = CompileRule(
      std::string(kPrelude) +
      "(p m [player ^name <n> ^team A] (player ^name <n> ^team B)"
      " --> (write <n>))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE((*r)->FindVar("n")->set_oriented);
}

TEST_F(CompilerTest, TestAggregatesCompiled) {
  auto r = CompileRule(
      std::string(kPrelude) +
      "(p s { [player ^team A] <A> } { [player ^team B] <B> }"
      " :test ((count <A>) == (count <B>)) --> (halt))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const CompiledRule& rule = **r;
  ASSERT_EQ(rule.test_aggregates.size(), 2u);
  EXPECT_TRUE(rule.test_aggregates[0].over_element);
  EXPECT_EQ(rule.ast.test->lhs->agg_index, 0);
  EXPECT_EQ(rule.ast.test->rhs->agg_index, 1);
}

TEST_F(CompilerTest, CompileErrors) {
  // Rule without condition elements.
  EXPECT_FALSE(CompileRule("(p r --> (halt))").ok());
  // Unknown class.
  EXPECT_FALSE(CompileRule("(p r (ghost) --> (halt))").ok());
  // Unknown attribute.
  EXPECT_FALSE(
      CompileRule(std::string(kPrelude) + "(p r (player ^salary 3) --> (halt))")
          .ok());
  // Predicate before binding.
  EXPECT_FALSE(CompileRule(std::string(kPrelude) +
                           "(p r (player ^name > <n>) --> (halt))")
                   .ok());
  // First CE negated.
  EXPECT_FALSE(CompileRule(std::string(kPrelude) +
                           "(p r - (player) --> (halt))")
                   .ok());
  // Negated set CE.
  EXPECT_FALSE(CompileRule(std::string(kPrelude) +
                           "(p r (player) - [player] --> (halt))")
                   .ok());
  // :test without set CEs.
  EXPECT_FALSE(CompileRule(std::string(kPrelude) +
                           "(p r (player ^name <n>) :test ((<n> == 1))"
                           " --> (halt))")
                   .ok());
  // Aggregate over scalar variable.
  EXPECT_FALSE(CompileRule(std::string(kPrelude) +
                           "(p r (player ^name <n>) [player ^team <t>]"
                           " :test ((count <n>) > 1) --> (halt))")
                   .ok());
  // min over element variable.
  EXPECT_FALSE(CompileRule(std::string(kPrelude) +
                           "(p r { [player] <P> } :test ((min <P>) > 1)"
                           " --> (halt))")
                   .ok());
  // Set variable read without foreach.
  EXPECT_FALSE(CompileRule(std::string(kPrelude) +
                           "(p r [player ^name <n>] --> (write <n>))")
                   .ok());
  // remove of a set element var outside foreach.
  EXPECT_FALSE(CompileRule(std::string(kPrelude) +
                           "(p r { [player] <P> } --> (remove <P>))")
                   .ok());
  // set-remove of a regular element var.
  EXPECT_FALSE(CompileRule(std::string(kPrelude) +
                           "(p r { (player) <P> } --> (set-remove <P>))")
                   .ok());
  // bind shadowing an LHS variable.
  EXPECT_FALSE(CompileRule(std::string(kPrelude) +
                           "(p r (player ^name <n>) --> (bind <n> 1))")
                   .ok());
  // foreach over a scalar.
  EXPECT_FALSE(CompileRule(std::string(kPrelude) +
                           "(p r (player ^name <n>) --> "
                           "(foreach <n> (write <n>)))")
                   .ok());
  // Unbound variable in RHS.
  EXPECT_FALSE(CompileRule(std::string(kPrelude) +
                           "(p r (player) --> (write <ghost>))")
                   .ok());
}

TEST_F(CompilerTest, ForeachUnlocksSetVariables) {
  auto r = CompileRule(
      std::string(kPrelude) +
      "(p g { [player ^team <t> ^name <n>] <P> } --> "
      "(foreach <P> (write <n> <t>)))");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST_F(CompilerTest, SpecificityCountsTests) {
  auto r1 = CompileRule(std::string(kPrelude) + "(p a (player) --> (halt))");
  auto r2 = CompileRule(std::string(kPrelude) +
                        "(p b (player ^team A ^name <n>) (player ^name <n>)"
                        " --> (halt))");
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ((*r1)->specificity, 1);
  EXPECT_EQ((*r2)->specificity, 4);  // 2 class + 1 const + 1 join
}

}  // namespace
}  // namespace sorel
