// Parallel-match equivalence: with `match_threads` = N every matcher fans
// each ChangeBatch out to a worker pool (Rete replays per-rule beta chains,
// TREAT re-searches per rule, DIPS refreshes per rule) and merges the
// buffered conflict-set sends deterministically — so the observable
// behavior must be bit-identical to the single-threaded baseline: same
// firing sequence (rule + recency tags), same conflict sets, same final
// working memory, same time-tag counter. Checked for every matcher ×
// strategy × batched/per-WME delivery over random op sequences with
// WM-mutating rules. Internal matcher counters (ReteStats etc.) are NOT
// compared: the replay path legitimately skips the sequential path's
// grouped-removal bookkeeping.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace sorel {
namespace {

/// Deterministic LCG so failures reproduce.
class Rng {
 public:
  explicit Rng(unsigned seed) : state_(seed * 2654435761u + 12345u) {}
  unsigned Next(unsigned bound) {
    state_ = state_ * 1664525u + 1013904223u;
    return (state_ >> 16) % bound;
  }

 private:
  unsigned state_;
};

constexpr std::string_view kSchema = "(literalize player name team score)";

// Tuple-oriented mutating rules: every matcher (TREAT included) runs these.
// Each one drains its own trigger, so capped runs terminate. The mix covers
// joins, negation, and modify/remove RHS actions — the cases where a buggy
// merge would reorder conflict-set arrivals.
constexpr const char* kTupleRules =
    "(p cap { (player ^score > 4) <p> } --> (modify <p> ^score 4))"
    "(p purge-c (player ^team C ^name <n>) --> (remove 1))"
    "(p lone-b { (player ^team B ^name <n>) <p> }"
    " - (player ^team A ^name <n>) --> (modify <p> ^team A))"
    "(p twin { (player ^name <n> ^team <t> ^score <s>) <p> }"
    " (player ^name <n> ^team <> <t>) (player ^score < <s>)"
    " --> (modify <p> ^score 2))";

// Set-oriented mutating rules (Rete and DIPS only; TREAT rejects set CEs).
constexpr const char* kSetRules =
    "(p zero-team { [player ^team <t> ^score <s>] <P> } :scalar (<t>)"
    " :test ((sum <s>) > 8) --> (set-modify <P> ^score 0))";

/// Canonical conflict-set fingerprint (rule name + sorted row signatures).
std::multiset<std::string> Fingerprint(Engine& engine) {
  std::multiset<std::string> out;
  for (InstantiationRef* inst : engine.conflict_set().Entries()) {
    std::vector<Row> rows;
    inst->CollectRows(&rows);
    std::vector<std::string> row_sigs;
    for (const Row& row : rows) {
      std::string sig;
      for (const WmePtr& w : row) {
        sig += std::to_string(w->time_tag());
        sig += ",";
      }
      row_sigs.push_back(std::move(sig));
    }
    std::sort(row_sigs.begin(), row_sigs.end());
    std::string entry = inst->rule().name + "{";
    for (const std::string& s : row_sigs) entry += s + ";";
    entry += "}";
    out.insert(std::move(entry));
  }
  return out;
}

std::string Dump(Engine& engine) {
  std::ostringstream out;
  engine.DumpWm(out);
  return out.str();
}

/// One parallel configuration to pit against the sequential baseline.
struct ParConfig {
  int threads = 0;
  bool batched = true;
  int intra_split = 0;    // EngineOptions::intra_rule_split_min_tokens
  bool parallel_rhs = false;
};

/// Drives a single-threaded and a parallel-configured engine through the
/// same random add / remove / run schedule and asserts bit-identical
/// observable behavior throughout.
void CheckEquivalence(MatcherKind matcher, Strategy strategy,
                      const ParConfig& config, unsigned seed,
                      bool with_set_rules) {
  int threads = config.threads;
  bool batched = config.batched;
  SCOPED_TRACE("threads=" + std::to_string(threads) +
               " batched=" + std::to_string(batched) +
               " intra_split=" + std::to_string(config.intra_split) +
               " parallel_rhs=" + std::to_string(config.parallel_rhs) +
               " seed=" + std::to_string(seed));
  std::ostringstream seq_trace, par_trace;
  EngineOptions seq_opts, par_opts;
  seq_opts.matcher = par_opts.matcher = matcher;
  seq_opts.strategy = par_opts.strategy = strategy;
  seq_opts.trace_firings = par_opts.trace_firings = true;
  seq_opts.batched_wm = par_opts.batched_wm = batched;
  seq_opts.match_threads = 0;
  par_opts.match_threads = threads;
  par_opts.intra_rule_split_min_tokens = config.intra_split;
  par_opts.parallel_rhs = config.parallel_rhs;
  Engine seq(seq_opts), par(par_opts);
  seq.set_output(&seq_trace);
  par.set_output(&par_trace);
  std::string program = std::string(kSchema) + kTupleRules;
  if (with_set_rules) program += kSetRules;
  MustLoad(seq, program);
  MustLoad(par, program);

  Rng rng(seed);
  static const char* kNames[] = {"ann", "bob", "cyd", "dee"};
  static const char* kTeams[] = {"A", "B", "C"};
  for (int step = 0; step < 36; ++step) {
    // Rule firings mutate the WM, so removal targets come from the live
    // snapshot, not a remembered tag list.
    std::vector<WmePtr> snap = seq.wm().Snapshot();
    if (!snap.empty() && rng.Next(4) == 0) {
      TimeTag tag = snap[rng.Next(static_cast<unsigned>(snap.size()))]
                        ->time_tag();
      ASSERT_NE(par.wm().Find(tag), nullptr) << "step " << step;
      ASSERT_TRUE(seq.RemoveWme(tag).ok());
      ASSERT_TRUE(par.RemoveWme(tag).ok());
    } else {
      const char* name = kNames[rng.Next(4)];
      const char* team = kTeams[rng.Next(3)];
      auto score = static_cast<int64_t>(rng.Next(6));
      for (Engine* e : {&seq, &par}) {
        auto r = e->MakeWme("player", {{"name", e->Sym(name)},
                                       {"team", e->Sym(team)},
                                       {"score", Value::Int(score)}});
        ASSERT_TRUE(r.ok());
      }
    }
    ASSERT_EQ(Fingerprint(seq), Fingerprint(par)) << "step " << step;
    if (step % 4 == 3) {
      int fired_seq = MustRun(seq, 8);
      int fired_par = MustRun(par, 8);
      ASSERT_EQ(fired_seq, fired_par) << "step " << step;
      ASSERT_EQ(seq_trace.str(), par_trace.str()) << "step " << step;
      ASSERT_EQ(Fingerprint(seq), Fingerprint(par)) << "step " << step;
      // Identical firing sequence implies identical modifies, so the
      // monotone tag counters must agree too.
      ASSERT_EQ(seq.wm().next_time_tag(), par.wm().next_time_tag())
          << "step " << step;
      ASSERT_EQ(Dump(seq), Dump(par)) << "step " << step;
    }
  }
  // The baseline really is the ablation: no pool on the threads=0 side.
  EXPECT_EQ(seq.match_stats().pool.threads, 0u);
  if (threads > 0) {
    EXPECT_EQ(par.match_stats().pool.threads,
              static_cast<uint64_t>(threads));
  }
}

void CheckAllConfigs(MatcherKind matcher, Strategy strategy, unsigned seed,
                     bool with_set_rules) {
  for (int threads : {1, 2, 4}) {
    for (bool batched : {true, false}) {
      CheckEquivalence(matcher, strategy, {threads, batched}, seed,
                       with_set_rules);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // Intra-rule slicing and parallel RHS, separately and together, and a
  // parallel-RHS-only pool (no match threads).
  ParConfig extra[] = {
      {4, true, 1, false},
      {2, false, 2, false},
      {2, true, 0, true},
      {0, true, 0, true},
      {4, true, 1, true},
  };
  for (const ParConfig& config : extra) {
    CheckEquivalence(matcher, strategy, config, seed, with_set_rules);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

class ParallelMatchEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ParallelMatchEquivalence, ReteLex) {
  CheckAllConfigs(MatcherKind::kRete, Strategy::kLex,
                  static_cast<unsigned>(GetParam()), true);
}

TEST_P(ParallelMatchEquivalence, ReteMea) {
  CheckAllConfigs(MatcherKind::kRete, Strategy::kMea,
                  static_cast<unsigned>(GetParam()) + 100u, true);
}

TEST_P(ParallelMatchEquivalence, TreatLex) {
  CheckAllConfigs(MatcherKind::kTreat, Strategy::kLex,
                  static_cast<unsigned>(GetParam()) + 200u, false);
}

TEST_P(ParallelMatchEquivalence, TreatMea) {
  CheckAllConfigs(MatcherKind::kTreat, Strategy::kMea,
                  static_cast<unsigned>(GetParam()) + 300u, false);
}

TEST_P(ParallelMatchEquivalence, DipsLex) {
  CheckAllConfigs(MatcherKind::kDips, Strategy::kLex,
                  static_cast<unsigned>(GetParam()) + 400u, true);
}

TEST_P(ParallelMatchEquivalence, DipsMea) {
  CheckAllConfigs(MatcherKind::kDips, Strategy::kMea,
                  static_cast<unsigned>(GetParam()) + 500u, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelMatchEquivalence,
                         ::testing::Range(0, 6));

// The parallel path actually engages: a batched multi-rule run with
// threads > 0 must dispatch replay tasks through the pool.
TEST(ParallelMatchEngaged, PoolRunsTasks) {
  for (MatcherKind matcher :
       {MatcherKind::kRete, MatcherKind::kTreat, MatcherKind::kDips}) {
    EngineOptions opts;
    opts.matcher = matcher;
    opts.match_threads = 2;
    Engine engine(opts);
    std::ostringstream sink;
    engine.set_output(&sink);
    MustLoad(engine, std::string(kSchema) + kTupleRules);
    for (int i = 0; i < 12; ++i) {
      MustMake(engine, "player",
               {{"name", engine.Sym(i % 2 == 0 ? "ann" : "bob")},
                {"team", engine.Sym(i % 3 == 0 ? "B" : "C")},
                {"score", Value::Int(5)}});
    }
    MustRun(engine, 32);
    Engine::MatchStats stats = engine.match_stats();
    EXPECT_EQ(stats.pool.threads, 2u) << "matcher " << static_cast<int>(matcher);
    EXPECT_GT(stats.pool.tasks, 0u) << "matcher " << static_cast<int>(matcher);
    EXPECT_GT(stats.pool.batches, 0u)
        << "matcher " << static_cast<int>(matcher);
  }
}

// The intra-rule split path actually engages: with a tiny threshold, Rete
// and TREAT must report forked slice scans.
TEST(ParallelMatchEngaged, IntraRuleSplitRunsSlices) {
  for (MatcherKind matcher : {MatcherKind::kRete, MatcherKind::kTreat}) {
    EngineOptions opts;
    opts.matcher = matcher;
    opts.match_threads = 2;
    opts.intra_rule_split_min_tokens = 2;
    Engine engine(opts);
    std::ostringstream sink;
    engine.set_output(&sink);
    MustLoad(engine, std::string(kSchema));
    for (int i = 0; i < 16; ++i) {
      MustMake(engine, "player",
               {{"name", engine.Sym(i % 2 == 0 ? "ann" : "bob")},
                {"team", engine.Sym(i % 3 == 0 ? "B" : "C")},
                {"score", Value::Int(i % 6)}});
    }
    // Rules load after the WM is populated so the add-rule search (TREAT's
    // SearchAll, Rete's replay) scans alphas above the split threshold.
    MustLoad(engine, kTupleRules);
    MustRun(engine, 24);
    Engine::MatchStats stats = engine.match_stats();
    uint64_t splits = matcher == MatcherKind::kRete ? stats.rete.intra_splits
                                                    : stats.treat.intra_splits;
    uint64_t slice_tasks = matcher == MatcherKind::kRete
                               ? stats.rete.intra_slice_tasks
                               : stats.treat.intra_slice_tasks;
    EXPECT_GT(splits, 0u) << "matcher " << static_cast<int>(matcher);
    EXPECT_GT(slice_tasks, splits) << "matcher " << static_cast<int>(matcher);
  }
}

// Parallel RHS engages without match threads: the engine must still build
// a pool and fork set-action member evaluations onto it.
TEST(ParallelMatchEngaged, ParallelRhsForksWithoutMatchThreads) {
  EngineOptions opts;
  opts.parallel_rhs = true;
  Engine engine(opts);
  std::ostringstream sink;
  engine.set_output(&sink);
  MustLoad(engine, std::string(kSchema) + kSetRules);
  // Scores must be distinct: the set aggregate runs over distinct projected
  // values, so four copies of 5 sum to 5 and the :test never passes.
  for (int i = 0; i < 4; ++i) {
    MustMake(engine, "player", {{"name", engine.Sym("ann")},
                                {"team", engine.Sym("A")},
                                {"score", Value::Int(i + 1)}});
  }
  MustRun(engine, 8);
  EXPECT_GT(engine.rhs_stats().parallel_forks, 0u);
  EXPECT_GT(engine.rhs_stats().parallel_member_tasks, 0u);
  EXPECT_GT(engine.match_stats().pool.threads, 0u);
  EXPECT_GT(engine.match_stats().pool.tasks, 0u);
}

}  // namespace
}  // namespace sorel
