// Differential fuzzing across matchers and engine configurations.
//
// Seeded random programs (plain CEs with joins and negations, set CEs with
// aggregates and :scalar, set-modify / set-remove / foreach RHS) and random
// WM schedules drive pairs of engines that must agree:
//
//   1. Within one matcher, every parallel configuration — match_threads,
//      intra_rule_split_min_tokens, parallel_rhs, each × batched_wm — must
//      be bit-identical to the single-threaded baseline: same firing trace
//      and write output, same conflict set after every op, same final WM
//      dump and time-tag counter, same error text.
//   2. Across matchers (Rete vs TREAT vs DIPS), match-only schedules must
//      produce the same canonical conflict-set fingerprint and WM state.
//      (Firing schedules are not compared across matchers: conflict-
//      resolution tie-breaks depend on matcher-specific arrival order.)
//
// Every run also captures the structured TraceSink event stream (JSON
// lines: cycle/select/fire/rhs_apply plus WM batch_commit/rollback), and
// within-matcher pairs must agree on it too — the firing-trace comparison
// the ROADMAP asked for, run under both LEX and MEA. Per-rule rule_replay
// events and sequence numbers are normalized away first: replay
// granularity legitimately depends on the parallel configuration.
//
// On a mismatch the harness greedily shrinks the schedule and the rule
// list, then prints a self-contained repro (program source, schedule,
// the two configurations, the first divergence, and the tail of both
// event streams in the TraceSink JSONL format).

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "tests/fuzz_gen.h"
#include "tests/test_util.h"

namespace sorel {
namespace {

using fuzz::FuzzOp;
using fuzz::FuzzProgram;
using fuzz::FuzzRng;

struct FuzzConfig {
  MatcherKind matcher = MatcherKind::kRete;
  Strategy strategy = Strategy::kLex;
  int threads = 0;
  bool batched = true;
  int intra_split = 0;
  bool parallel_rhs = false;
  bool indexed_cs = true;
  bool bulk_removal = true;  // Rete: per-batch bulk token-tree deletion
  bool soa_memories = true;  // Rete/TREAT: columnar match-state layout
  JoinOrder join_order = JoinOrder::kTextual;

  std::string ToString() const {
    std::string m = matcher == MatcherKind::kRete    ? "rete"
                    : matcher == MatcherKind::kTreat ? "treat"
                    : matcher == MatcherKind::kPlan  ? "plan"
                                                     : "dips";
    return m + (strategy == Strategy::kLex ? "/lex" : "/mea") +
           " threads=" + std::to_string(threads) +
           " batched=" + std::to_string(batched) +
           " intra_split=" + std::to_string(intra_split) +
           " parallel_rhs=" + std::to_string(parallel_rhs) +
           " indexed_cs=" + std::to_string(indexed_cs) +
           " bulk_removal=" + std::to_string(bulk_removal) +
           " soa_memories=" + std::to_string(soa_memories) +
           " join_order=" +
           (join_order == JoinOrder::kTextual ? "textual" : "optimized");
  }
};

/// Everything observable from one engine run of a schedule.
struct FuzzResult {
  std::string load_error;  // empty = loaded fine
  std::string trace;       // firing trace + RHS write output
  std::string events;      // structured TraceSink stream (JSON lines)
  std::vector<std::string> fingerprints;  // conflict set after each op
  /// Same, with tags sorted within each row (CE-reordering-insensitive).
  std::vector<std::string> fingerprints_rowset;
  std::string dump;        // final WM
  uint64_t next_tag = 0;
  std::string run_error;   // first Run error (empty = none)
};

/// Canonicalizes an event stream for comparison: drops per-rule
/// rule_replay events (their granularity depends on matcher and parallel
/// config) and the seq field (replay events consume sequence numbers).
std::string NormalizeEvents(const std::string& events) {
  std::istringstream in(events);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.find("\"ev\":\"rule_replay\"") != std::string::npos) continue;
    size_t pos = line.find(",\"seq\":");
    if (pos != std::string::npos) {
      size_t end = pos + 7;
      while (end < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[end])) != 0) {
        ++end;
      }
      line.erase(pos, end - pos);
    }
    out += line;
    out += '\n';
  }
  return out;
}

/// The last `n` lines of an event stream, for repro dumps.
std::string EventTail(const std::string& events, size_t n) {
  std::vector<std::string> lines;
  std::istringstream in(events);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::string out;
  for (size_t i = lines.size() > n ? lines.size() - n : 0; i < lines.size();
       ++i) {
    out += lines[i];
    out += '\n';
  }
  return out;
}

/// Canonical conflict-set fingerprint: sorted "rule{sorted row tags}"
/// entries, comparable across matchers. With `row_multiset`, tags are
/// sorted within each row too — the form comparable across *CE
/// reorderings* (the load-time pre-reordering pass permutes token
/// positions, so raw row order legitimately differs).
std::string Fingerprint(Engine& engine, bool row_multiset) {
  std::vector<std::string> entries;
  for (InstantiationRef* inst : engine.conflict_set().Entries()) {
    std::vector<Row> rows;
    inst->CollectRows(&rows);
    std::vector<std::string> row_sigs;
    for (const Row& row : rows) {
      std::vector<TimeTag> tags;
      for (const WmePtr& w : row) tags.push_back(w->time_tag());
      if (row_multiset) std::sort(tags.begin(), tags.end());
      std::string sig;
      for (TimeTag t : tags) {
        sig += std::to_string(t);
        sig += ",";
      }
      row_sigs.push_back(std::move(sig));
    }
    std::sort(row_sigs.begin(), row_sigs.end());
    std::string entry = inst->rule().name + "{";
    for (const std::string& s : row_sigs) entry += s + ";";
    entry += "}";
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end());
  std::string out;
  for (const std::string& e : entries) {
    out += e;
    out += " ";
  }
  return out;
}

FuzzResult RunSchedule(const FuzzProgram& program,
                       const std::vector<FuzzOp>& schedule,
                       const FuzzConfig& config) {
  FuzzResult result;
  EngineOptions opts;
  opts.matcher = config.matcher;
  opts.strategy = config.strategy;
  opts.trace_firings = true;
  opts.batched_wm = config.batched;
  opts.match_threads = config.threads;
  opts.intra_rule_split_min_tokens = config.intra_split;
  opts.parallel_rhs = config.parallel_rhs;
  opts.indexed_conflict_set = config.indexed_cs;
  opts.rete.bulk_removal = config.bulk_removal;
  opts.rete.soa_memories = config.soa_memories;
  opts.join_order = config.join_order;
  std::ostringstream events;
  obs::JsonLinesTraceSink sink(&events);
  opts.trace_sink = &sink;
  Engine engine(opts);
  std::ostringstream out;
  engine.set_output(&out);
  Status loaded = engine.LoadString(program.Source());
  if (!loaded.ok()) {
    result.load_error = loaded.ToString();
    return result;
  }
  for (const FuzzOp& op : schedule) {
    switch (op.kind) {
      case FuzzOp::Kind::kMake: {
        auto r = engine.MakeWme(
            "item", {{"id", Value::Int(op.id)},
                     {"cat", engine.Sym(fuzz::kCats[op.cat])},
                     {"val", Value::Int(op.val)}});
        if (!r.ok() && result.run_error.empty()) {
          result.run_error = r.status().ToString();
        }
        break;
      }
      case FuzzOp::Kind::kRemove: {
        std::vector<WmePtr> snap = engine.wm().Snapshot();
        if (snap.empty()) break;
        TimeTag tag =
            snap[op.pick % static_cast<unsigned>(snap.size())]->time_tag();
        Status s = engine.RemoveWme(tag);
        if (!s.ok() && result.run_error.empty()) {
          result.run_error = s.ToString();
        }
        break;
      }
      case FuzzOp::Kind::kRun: {
        auto r = engine.Run(op.cap);
        if (!r.ok() && result.run_error.empty()) {
          result.run_error = r.status().ToString();
        }
        break;
      }
    }
    result.fingerprints.push_back(Fingerprint(engine, false));
    result.fingerprints_rowset.push_back(Fingerprint(engine, true));
  }
  result.trace = out.str();
  result.events = events.str();
  std::ostringstream dump;
  engine.DumpWm(dump);
  result.dump = dump.str();
  result.next_tag = static_cast<uint64_t>(engine.wm().next_time_tag());
  return result;
}

/// Comparison strictness. kFull: everything (within-config and
/// plan-vs-Rete bit-identity). kMatchOnly: canonical conflict sets + WM
/// (cross-matcher — tie-breaks depend on arrival order). kMatchRowset:
/// kMatchOnly with row-multiset fingerprints (CE-reordered Rete/TREAT —
/// token positions are permuted by the rewrite).
enum class Cmp { kFull, kMatchOnly, kMatchRowset };

/// First divergence between two results, or "" if identical.
std::string Diff(const FuzzResult& a, const FuzzResult& b, Cmp cmp) {
  const bool match_only = cmp != Cmp::kFull;
  if (a.load_error != b.load_error) {
    return "load: [" + a.load_error + "] vs [" + b.load_error + "]";
  }
  if (!a.load_error.empty()) return "";
  if (a.run_error != b.run_error) {
    return "run status: [" + a.run_error + "] vs [" + b.run_error + "]";
  }
  if (!match_only && a.trace != b.trace) {
    return "trace:\n--- A ---\n" + a.trace + "--- B ---\n" + b.trace;
  }
  if (!match_only) {
    std::string ea = NormalizeEvents(a.events);
    std::string eb = NormalizeEvents(b.events);
    if (ea != eb) {
      return "events (normalized, last 20):\n--- A ---\n" +
             EventTail(ea, 20) + "--- B ---\n" + EventTail(eb, 20);
    }
  }
  const std::vector<std::string>& fa =
      cmp == Cmp::kMatchRowset ? a.fingerprints_rowset : a.fingerprints;
  const std::vector<std::string>& fb =
      cmp == Cmp::kMatchRowset ? b.fingerprints_rowset : b.fingerprints;
  size_t steps = std::min(fa.size(), fb.size());
  for (size_t i = 0; i < steps; ++i) {
    if (fa[i] != fb[i]) {
      return "conflict set after op " + std::to_string(i) + ":\nA: " +
             fa[i] + "\nB: " + fb[i];
    }
  }
  if (a.dump != b.dump) {
    return "final WM:\n--- A ---\n" + a.dump + "--- B ---\n" + b.dump;
  }
  if (!match_only && a.next_tag != b.next_tag) {
    return "time-tag counter: " + std::to_string(a.next_tag) + " vs " +
           std::to_string(b.next_tag);
  }
  return "";
}

std::string Check(const FuzzProgram& program,
                  const std::vector<FuzzOp>& schedule, const FuzzConfig& a,
                  const FuzzConfig& b, Cmp cmp) {
  return Diff(RunSchedule(program, schedule, a),
              RunSchedule(program, schedule, b), cmp);
}

/// Greedy shrink: drop schedule ops (end first), then whole rules, as long
/// as some divergence survives. Returns the self-contained repro text.
std::string ShrinkAndFormat(FuzzProgram program, std::vector<FuzzOp> schedule,
                            const FuzzConfig& a, const FuzzConfig& b,
                            Cmp cmp, unsigned seed) {
  for (size_t i = schedule.size(); i-- > 0;) {
    std::vector<FuzzOp> trial = schedule;
    trial.erase(trial.begin() + static_cast<long>(i));
    if (!Check(program, trial, a, b, cmp).empty()) {
      schedule = std::move(trial);
    }
  }
  for (size_t r = program.rules.size(); r-- > 0;) {
    if (program.rules.size() == 1) break;
    FuzzProgram trial = program;
    trial.rules.erase(trial.rules.begin() + static_cast<long>(r));
    if (!Check(program, schedule, a, b, cmp).empty() &&
        !Check(trial, schedule, a, b, cmp).empty()) {
      program = std::move(trial);
    }
  }
  std::string mismatch = Check(program, schedule, a, b, cmp);
  std::string out = "=== FUZZ REPRO (seed " + std::to_string(seed) +
                    ") ===\nprogram:\n" + program.Source() +
                    "\nschedule:\n" + fuzz::ScheduleToString(schedule) +
                    "config A: " + a.ToString() + "\nconfig B: " +
                    b.ToString() + "\nmismatch: " + mismatch + "\n";
  return out;
}

/// One seed of the within-matcher sweep, run under BOTH strategies: LEX
/// and MEA each produce their own firing trace and structured event
/// stream, and every parallel configuration must reproduce its strategy's
/// streams exactly (the ROADMAP's LEX-vs-MEA firing-trace comparison).
void CheckConfigSweep(MatcherKind matcher, unsigned seed) {
  FuzzRng rng(seed);
  bool allow_set =
      matcher != MatcherKind::kTreat && matcher != MatcherKind::kPlan;
  FuzzProgram program = fuzz::GenProgram(rng, allow_set);
  std::vector<FuzzOp> schedule = fuzz::GenSchedule(rng, 28, true);

  for (Strategy strategy : {Strategy::kLex, Strategy::kMea}) {
    for (bool batched : {true, false}) {
      FuzzConfig base{matcher, strategy, 0, batched, 0, false};
      FuzzResult base_result = RunSchedule(program, schedule, base);
      // Generated programs must always load — a load failure here is a
      // generator bug, not a divergence.
      ASSERT_EQ(base_result.load_error, "")
          << "seed " << seed << "\n" << program.Source();
      std::vector<FuzzConfig> variants = {
          {matcher, strategy, 4, batched, 0, false},
          {matcher, strategy, 4, batched, 2, false},
          {matcher, strategy, 4, batched, 2, true},
          {matcher, strategy, 0, batched, 0, true},
          {matcher, strategy, 0, batched, 0, false, /*indexed_cs=*/false},
      };
      if (matcher == MatcherKind::kPlan) {
        // The cost-chosen execution order must be unobservable: emission
        // is canonicalized, so optimized plans (serial and parallel) stay
        // bit-identical to the textual-order baseline.
        variants.push_back({matcher, strategy, 0, batched, 0, false,
                            /*indexed_cs=*/true, /*bulk_removal=*/true,
                            /*soa_memories=*/true, JoinOrder::kOptimized});
        variants.push_back({matcher, strategy, 4, batched, 0, false,
                            /*indexed_cs=*/true, /*bulk_removal=*/true,
                            /*soa_memories=*/true, JoinOrder::kOptimized});
      }
      for (const FuzzConfig& variant : variants) {
        std::string mismatch =
            Diff(base_result, RunSchedule(program, schedule, variant),
                 Cmp::kFull);
        if (!mismatch.empty()) {
          FAIL() << ShrinkAndFormat(program, schedule, base, variant, Cmp::kFull,
                                    seed);
        }
      }
    }
  }
}

/// One seed of the remove-heavy negation sweep (ROADMAP open item):
/// high-negation-density programs (GenTupleRule neg_chance=70, so most
/// rules carry one negated CE and many carry two) against schedules where
/// half the steps retract — the workload that exercises negated-CE
/// blocking/unblocking, token deletion, and SOI emptying under every
/// parallel configuration.
void CheckRemoveHeavy(MatcherKind matcher, unsigned seed) {
  FuzzRng rng(seed);
  bool allow_set =
      matcher != MatcherKind::kTreat && matcher != MatcherKind::kPlan;
  FuzzProgram program = fuzz::GenProgram(rng, allow_set, /*neg_chance=*/70);
  std::vector<FuzzOp> schedule =
      fuzz::GenSchedule(rng, 32, true, /*remove_pct=*/50);

  for (Strategy strategy : {Strategy::kLex, Strategy::kMea}) {
    for (bool batched : {true, false}) {
      FuzzConfig base{matcher, strategy, 0, batched, 0, false};
      FuzzResult base_result = RunSchedule(program, schedule, base);
      ASSERT_EQ(base_result.load_error, "")
          << "seed " << seed << "\n" << program.Source();
      std::vector<FuzzConfig> variants = {
          {matcher, strategy, 4, batched, 0, false},
          {matcher, strategy, 4, batched, 2, true},
      };
      if (matcher == MatcherKind::kRete) {
        // The per-token deletion ablation must be observationally
        // identical to the default bulk tree-deletion path.
        variants.push_back({matcher, strategy, 0, batched, 0, false,
                            /*indexed_cs=*/true, /*bulk_removal=*/false});
        variants.push_back({matcher, strategy, 4, batched, 0, false,
                            /*indexed_cs=*/true, /*bulk_removal=*/false});
      }
      // The tuple-layout (AoS) match-state ablation must be bit-identical
      // to the default columnar layout, serial and parallel.
      variants.push_back({matcher, strategy, 0, batched, 0, false,
                          /*indexed_cs=*/true, /*bulk_removal=*/true,
                          /*soa_memories=*/false});
      variants.push_back({matcher, strategy, 4, batched, 0, false,
                          /*indexed_cs=*/true, /*bulk_removal=*/true,
                          /*soa_memories=*/false});
      if (matcher == MatcherKind::kPlan) {
        // Optimized join order under retraction-heavy load: the unblock
        // re-searches and instantiation drops must stay bit-identical.
        variants.push_back({matcher, strategy, 0, batched, 0, false,
                            /*indexed_cs=*/true, /*bulk_removal=*/true,
                            /*soa_memories=*/true, JoinOrder::kOptimized});
        variants.push_back({matcher, strategy, 4, batched, 0, false,
                            /*indexed_cs=*/true, /*bulk_removal=*/true,
                            /*soa_memories=*/true, JoinOrder::kOptimized});
      }
      for (const FuzzConfig& variant : variants) {
        std::string mismatch =
            Diff(base_result, RunSchedule(program, schedule, variant),
                 Cmp::kFull);
        if (!mismatch.empty()) {
          FAIL() << ShrinkAndFormat(program, schedule, base, variant, Cmp::kFull,
                                    seed);
        }
      }
    }
  }
}

/// One seed of the cross-matcher check: match-only schedules, canonical
/// fingerprints + WM state. The join_order=optimized columns also pull in
/// the load-time CE pre-reordering pass (Rete/TREAT execute a rewritten
/// rule, which must still match the same instantiations).
void CheckCrossMatcher(unsigned seed) {
  FuzzRng rng(seed);
  FuzzProgram tuple_program = fuzz::GenProgram(rng, false);
  std::vector<FuzzOp> schedule = fuzz::GenSchedule(rng, 24, false);
  Strategy strategy = (seed % 2 == 0) ? Strategy::kLex : Strategy::kMea;
  FuzzConfig rete{MatcherKind::kRete, strategy};
  FuzzConfig treat{MatcherKind::kTreat, strategy, 4};
  FuzzConfig dips{MatcherKind::kDips, strategy, 4};
  FuzzConfig plan{MatcherKind::kPlan, strategy, 4};
  FuzzConfig rete_opt{MatcherKind::kRete, strategy, 0, true, 0, false,
                      true, true, true, JoinOrder::kOptimized};
  FuzzConfig treat_opt{MatcherKind::kTreat, strategy, 4, true, 0, false,
                       true, true, true, JoinOrder::kOptimized};
  FuzzConfig plan_opt{MatcherKind::kPlan, strategy, 0, true, 0, false,
                      true, true, true, JoinOrder::kOptimized};
  // The reordered Rete/TREAT columns execute a rewritten rule whose token
  // positions are permuted, so their rows compare as multisets; the plan
  // matcher never rewrites the rule and keeps the strict row comparison.
  const std::pair<FuzzConfig, Cmp> columns[] = {
      {treat, Cmp::kMatchOnly},    {dips, Cmp::kMatchOnly},
      {plan, Cmp::kMatchOnly},     {rete_opt, Cmp::kMatchRowset},
      {treat_opt, Cmp::kMatchRowset}, {plan_opt, Cmp::kMatchOnly},
  };
  for (const auto& [other, cmp] : columns) {
    std::string mismatch = Check(tuple_program, schedule, rete, other, cmp);
    if (!mismatch.empty()) {
      FAIL() << ShrinkAndFormat(tuple_program, schedule, rete, other, cmp,
                                seed);
    }
  }
  // Set-oriented programs: Rete's S-nodes vs DIPS' COND tables.
  FuzzProgram set_program = fuzz::GenProgram(rng, true);
  std::string mismatch = Check(set_program, schedule, rete, dips, Cmp::kMatchOnly);
  if (!mismatch.empty()) {
    FAIL() << ShrinkAndFormat(set_program, schedule, rete, dips, Cmp::kMatchOnly,
                              seed);
  }
}

/// The plan matcher's bit-identity contract against *sequential Rete*:
/// full-trace comparison (firing trace, normalized event stream, per-op
/// conflict sets, final WM, time-tag counter) on firing schedules, for
/// both join orders and both plan parallel modes. This is stronger than
/// the cross-matcher fingerprint check — conflict-resolution tie-breaks
/// (arrival order) must also coincide.
void CheckPlanVsRete(unsigned seed, int neg_chance, int remove_pct) {
  FuzzRng rng(seed);
  FuzzProgram program = fuzz::GenProgram(rng, false, neg_chance);
  std::vector<FuzzOp> schedule =
      fuzz::GenSchedule(rng, 28, true, remove_pct);
  for (Strategy strategy : {Strategy::kLex, Strategy::kMea}) {
    for (bool batched : {true, false}) {
      FuzzConfig rete{MatcherKind::kRete, strategy, 0, batched, 0, false};
      FuzzResult rete_result = RunSchedule(program, schedule, rete);
      ASSERT_EQ(rete_result.load_error, "")
          << "seed " << seed << "\n" << program.Source();
      FuzzConfig plans[] = {
          {MatcherKind::kPlan, strategy, 0, batched, 0, false},
          {MatcherKind::kPlan, strategy, 4, batched, 0, false},
          {MatcherKind::kPlan, strategy, 0, batched, 0, false, true, true,
           true, JoinOrder::kOptimized},
          {MatcherKind::kPlan, strategy, 4, batched, 0, false, true, true,
           true, JoinOrder::kOptimized},
      };
      for (const FuzzConfig& plan : plans) {
        std::string mismatch =
            Diff(rete_result, RunSchedule(program, schedule, plan),
                 Cmp::kFull);
        if (!mismatch.empty()) {
          FAIL() << ShrinkAndFormat(program, schedule, rete, plan, Cmp::kFull,
                                    seed);
        }
      }
    }
  }
}

class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, ReteConfigSweep) {
  for (unsigned s = 0; s < 10; ++s) {
    CheckConfigSweep(MatcherKind::kRete,
                     static_cast<unsigned>(GetParam()) * 10 + s);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(DifferentialFuzz, TreatConfigSweep) {
  for (unsigned s = 0; s < 10; ++s) {
    CheckConfigSweep(MatcherKind::kTreat,
                     1000 + static_cast<unsigned>(GetParam()) * 10 + s);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(DifferentialFuzz, DipsConfigSweep) {
  for (unsigned s = 0; s < 10; ++s) {
    CheckConfigSweep(MatcherKind::kDips,
                     2000 + static_cast<unsigned>(GetParam()) * 10 + s);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(DifferentialFuzz, CrossMatcherMatchOnly) {
  for (unsigned s = 0; s < 10; ++s) {
    CheckCrossMatcher(3000 + static_cast<unsigned>(GetParam()) * 10 + s);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(DifferentialFuzz, RemoveHeavyNegationRete) {
  for (unsigned s = 0; s < 5; ++s) {
    CheckRemoveHeavy(MatcherKind::kRete,
                     4000 + static_cast<unsigned>(GetParam()) * 10 + s);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(DifferentialFuzz, RemoveHeavyNegationTreat) {
  for (unsigned s = 0; s < 5; ++s) {
    CheckRemoveHeavy(MatcherKind::kTreat,
                     5000 + static_cast<unsigned>(GetParam()) * 10 + s);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(DifferentialFuzz, PlanConfigSweep) {
  for (unsigned s = 0; s < 10; ++s) {
    CheckConfigSweep(MatcherKind::kPlan,
                     6000 + static_cast<unsigned>(GetParam()) * 10 + s);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(DifferentialFuzz, RemoveHeavyNegationPlan) {
  for (unsigned s = 0; s < 5; ++s) {
    CheckRemoveHeavy(MatcherKind::kPlan,
                     7000 + static_cast<unsigned>(GetParam()) * 10 + s);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(DifferentialFuzz, PlanVsReteFullTrace) {
  for (unsigned s = 0; s < 5; ++s) {
    CheckPlanVsRete(8000 + static_cast<unsigned>(GetParam()) * 10 + s,
                    /*neg_chance=*/30, /*remove_pct=*/20);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_P(DifferentialFuzz, PlanVsReteRemoveHeavy) {
  for (unsigned s = 0; s < 5; ++s) {
    CheckPlanVsRete(9000 + static_cast<unsigned>(GetParam()) * 10 + s,
                    /*neg_chance=*/70, /*remove_pct=*/50);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// 7 shards × (10 seeds × (3 matchers + cross-matcher) + 2×5 remove-heavy
// seeds) = 350 generated programs per full run.
INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz, ::testing::Range(0, 7));

// Pinned remove-heavy regression seed: a deterministic anchor for the
// negation/removal interaction. The generator must keep producing a
// negation-bearing program and a retraction-heavy schedule for this seed
// (guarding the generator against silent distribution drift), and the
// full sweep must stay clean on it.
TEST(DifferentialFuzzRegression, RemoveHeavySeed4242) {
  FuzzRng rng(4242);
  FuzzProgram program = fuzz::GenProgram(rng, true, /*neg_chance=*/70);
  std::vector<FuzzOp> schedule =
      fuzz::GenSchedule(rng, 32, true, /*remove_pct=*/50);
  bool has_negation = false;
  for (const std::string& rule : program.rules) {
    if (rule.find(" - (item") != std::string::npos) has_negation = true;
  }
  EXPECT_TRUE(has_negation) << program.Source();
  int removes = 0;
  for (const FuzzOp& op : schedule) {
    if (op.kind == FuzzOp::Kind::kRemove) ++removes;
  }
  EXPECT_GE(removes, 8) << fuzz::ScheduleToString(schedule);
  CheckRemoveHeavy(MatcherKind::kRete, 4242);
  CheckRemoveHeavy(MatcherKind::kDips, 4242);
}

// The shrinker itself: a deliberately diverging "pair" (an engine with one
// rule vs the same engine with an extra firing rule) must shrink to a
// minimal schedule while preserving the divergence — guarding the
// harness's own machinery.
TEST(FuzzShrinker, ReducesScheduleAndKeepsDivergence) {
  FuzzProgram program;
  program.rules.push_back(
      "(p diverge { (item ^val > 3) <e> } --> (modify <e> ^val 0))");
  // Configs with different strategies genuinely diverge in trace once two
  // eligible instantiations coexist; the shrinker must keep a schedule
  // that still shows it.
  FuzzRng shrink_rng(7);
  std::vector<FuzzOp> schedule = fuzz::GenSchedule(shrink_rng, 20, true);
  FuzzConfig a{MatcherKind::kRete, Strategy::kLex};
  FuzzConfig b{MatcherKind::kRete, Strategy::kLex, 4, true, 2, true};
  // Identical configs modulo parallelism: no divergence, nothing to shrink.
  EXPECT_EQ(Check(program, schedule, a, b, Cmp::kFull), "");
}

}  // namespace
}  // namespace sorel
