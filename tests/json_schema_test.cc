// The bench-report JSON schema checker. Two modes:
//
//  - Self-contained: build a JsonReport in memory (and run the real
//    bench_fig3_snode smoke config shape), parse it back with
//    obs::ParseJson, and require ValidateBenchReport to accept it — plus a
//    battery of malformed documents it must reject.
//  - CI: when SOREL_CHECK_JSON names a file (the BENCH_*.json a `--json`
//    bench run just wrote), parse and validate that file. CI runs the
//    bench, then this test, so a drifting emitter or schema fails the
//    build.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "obs/json.h"

namespace sorel {
namespace {

Status ValidateText(const std::string& text) {
  Result<obs::JsonValue> doc = obs::ParseJson(text);
  if (!doc.ok()) return doc.status();
  return obs::ValidateBenchReport(*doc);
}

TEST(JsonSchema, AcceptsGeneratedReport) {
  bench::JsonReport report("schema_demo");
  report.Config("iters", 100);
  report.Config("smoke", 1);
  report.BeginRow("join/indexed");
  report.Value("ns_per_op", 123.456);
  report.Value("rete.join_attempts", 7);
  report.BeginRow("label with \"quotes\" and \\slashes\\");
  report.Value("x", -2.5e-3);
  std::ostringstream out;
  report.WriteTo(out);
  Status s = ValidateText(out.str());
  EXPECT_TRUE(s.ok()) << s.ToString() << "\n" << out.str();
}

TEST(JsonSchema, AcceptsEmptyResults) {
  bench::JsonReport report("empty");
  std::ostringstream out;
  report.WriteTo(out);
  EXPECT_TRUE(ValidateText(out.str()).ok());
}

TEST(JsonSchema, RejectsMalformedDocuments) {
  // Not JSON at all.
  EXPECT_FALSE(ValidateText("not json").ok());
  // Not an object.
  EXPECT_FALSE(ValidateText("[1, 2]").ok());
  // Missing "bench".
  EXPECT_FALSE(ValidateText(R"({"config": {}, "results": []})").ok());
  // "bench" is not a string.
  EXPECT_FALSE(
      ValidateText(R"({"bench": 3, "config": {}, "results": []})").ok());
  // Missing "results".
  EXPECT_FALSE(ValidateText(R"({"bench": "b", "config": {}})").ok());
  // "config" value is not a number.
  EXPECT_FALSE(ValidateText(
                   R"({"bench": "b", "config": {"n": "4"}, "results": []})")
                   .ok());
  // A row without a label.
  EXPECT_FALSE(
      ValidateText(
          R"({"bench": "b", "config": {}, "results": [{"x": 1}]})")
          .ok());
  // A row field that is neither the label string nor a number.
  EXPECT_FALSE(
      ValidateText(
          R"({"bench": "b", "config": {}, "results": )"
          R"([{"label": "r", "x": [1]}]})")
          .ok());
}

// CI mode: validate the file a `--json` bench run wrote. Skipped unless
// SOREL_CHECK_JSON is set, so local ctest runs don't depend on bench
// artifacts being present.
TEST(JsonSchema, ValidatesBenchArtifact) {
  const char* path = std::getenv("SOREL_CHECK_JSON");
  if (path == nullptr || *path == '\0') {
    GTEST_SKIP() << "SOREL_CHECK_JSON not set";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  Result<obs::JsonValue> doc = obs::ParseJson(text.str());
  ASSERT_TRUE(doc.ok()) << path << ": " << doc.status().ToString();
  Status s = obs::ValidateBenchReport(*doc);
  EXPECT_TRUE(s.ok()) << path << ": " << s.ToString();
  // The artifact must carry at least one timed row with real fields.
  const obs::JsonValue* results = doc->Find("results");
  ASSERT_NE(results, nullptr);
  EXPECT_FALSE(results->items.empty()) << path << " has no result rows";
  for (const obs::JsonValue& row : results->items) {
    // Google-benchmark-driven reports time in ns_per_op; phase-table
    // reports (parallel_match, removal) time in *_ms wall clocks. Either
    // counts as "timed" — a row with neither is an emitter regression.
    bool timed = row.Find("ns_per_op") != nullptr;
    for (const auto& [key, value] : row.members) {
      if (key.size() > 3 && key.compare(key.size() - 3, 3, "_ms") == 0) {
        timed = true;
      }
    }
    EXPECT_TRUE(timed) << path << ": row carries no timing field";
  }
}

}  // namespace
}  // namespace sorel
