#include <gtest/gtest.h>

#include "core/aggregate.h"

namespace sorel {
namespace {

TEST(AggStateTest, CountDistinctValues) {
  AggState agg(AggOp::kCount);
  agg.Insert(Value::Int(1));
  agg.Insert(Value::Int(1));  // duplicate: counter 2, domain size 1
  agg.Insert(Value::Int(2));
  auto v = agg.Current();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int(2));
}

TEST(AggStateTest, ValueLeavesDomainOnlyAtLastSupport) {
  // The paper's (value, counter) pairs: removing one of two supporting
  // occurrences must not change the aggregate.
  AggState agg(AggOp::kCount);
  agg.Insert(Value::Int(7));
  agg.Insert(Value::Int(7));
  agg.Remove(Value::Int(7));
  EXPECT_EQ(*agg.Current(), Value::Int(1));
  agg.Remove(Value::Int(7));
  EXPECT_EQ(*agg.Current(), Value::Int(0));
}

TEST(AggStateTest, MinMaxTrackDomain) {
  AggState lo(AggOp::kMin), hi(AggOp::kMax);
  for (int v : {5, 3, 9}) {
    lo.Insert(Value::Int(v));
    hi.Insert(Value::Int(v));
  }
  EXPECT_EQ(*lo.Current(), Value::Int(3));
  EXPECT_EQ(*hi.Current(), Value::Int(9));
  lo.Remove(Value::Int(3));
  hi.Remove(Value::Int(9));
  EXPECT_EQ(*lo.Current(), Value::Int(5));
  EXPECT_EQ(*hi.Current(), Value::Int(5));
}

TEST(AggStateTest, MinOfEmptyDomainIsError) {
  AggState agg(AggOp::kMin);
  EXPECT_FALSE(agg.Current().ok());
  agg.Insert(Value::Int(1));
  agg.Remove(Value::Int(1));
  EXPECT_FALSE(agg.Current().ok());
}

TEST(AggStateTest, SumStaysIntegralForIntegers) {
  AggState agg(AggOp::kSum);
  agg.Insert(Value::Int(10));
  agg.Insert(Value::Int(20));
  auto v = agg.Current();
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_int());
  EXPECT_EQ(*v, Value::Int(30));
}

TEST(AggStateTest, SumWidensWithFloats) {
  AggState agg(AggOp::kSum);
  agg.Insert(Value::Int(10));
  agg.Insert(Value::Float(0.5));
  auto v = agg.Current();
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_float());
  EXPECT_DOUBLE_EQ(v->as_float(), 10.5);
  agg.Remove(Value::Float(0.5));
  EXPECT_TRUE(agg.Current()->is_int());
}

TEST(AggStateTest, SumOverDistinctDomain) {
  // Domain semantics (§4.1): duplicated values contribute once.
  AggState agg(AggOp::kSum);
  agg.Insert(Value::Int(10));
  agg.Insert(Value::Int(10));
  EXPECT_EQ(*agg.Current(), Value::Int(10));
}

TEST(AggStateTest, SumOverSymbolsIsError) {
  AggState agg(AggOp::kSum);
  agg.Insert(Value::Symbol(5));
  EXPECT_FALSE(agg.Current().ok());
  agg.Remove(Value::Symbol(5));
  agg.Insert(Value::Int(1));
  EXPECT_TRUE(agg.Current().ok());
}

TEST(AggStateTest, AvgIsFloatOfDistinct) {
  AggState agg(AggOp::kAvg);
  agg.Insert(Value::Int(10));
  agg.Insert(Value::Int(20));
  agg.Insert(Value::Int(20));
  auto v = agg.Current();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Float(15.0));
}

TEST(AggStateTest, AvgOfEmptyIsError) {
  AggState agg(AggOp::kAvg);
  EXPECT_FALSE(agg.Current().ok());
}

TEST(AggStateTest, ClearResets) {
  AggState agg(AggOp::kSum);
  agg.Insert(Value::Int(5));
  agg.Clear();
  EXPECT_EQ(*agg.Current(), Value::Int(0));
  EXPECT_TRUE(agg.empty());
}

TEST(AggStateTest, MixedIntFloatEqualValuesMerge) {
  // 5 and 5.0 are the same value under OPS5 equality; the domain must not
  // double-count them.
  AggState agg(AggOp::kCount);
  agg.Insert(Value::Int(5));
  agg.Insert(Value::Float(5.0));
  EXPECT_EQ(*agg.Current(), Value::Int(1));
  agg.Remove(Value::Int(5));
  EXPECT_EQ(*agg.Current(), Value::Int(1));
  agg.Remove(Value::Float(5.0));
  EXPECT_EQ(*agg.Current(), Value::Int(0));
}

class AggSweep : public ::testing::TestWithParam<int> {};

TEST_P(AggSweep, IncrementalMatchesRecompute) {
  // Property: a shuffled insert/remove sequence leaves the same state as
  // recomputing from the surviving multiset.
  int seed = GetParam();
  unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1u;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (AggOp op : {AggOp::kCount, AggOp::kMin, AggOp::kMax, AggOp::kSum,
                   AggOp::kAvg}) {
    AggState incremental(op);
    std::multiset<int64_t> live;
    for (int step = 0; step < 200; ++step) {
      int64_t v = static_cast<int64_t>(next() % 10);
      bool remove = !live.empty() && (next() % 3 == 0);
      if (remove) {
        auto it = live.begin();
        std::advance(it, static_cast<long>(next() % live.size()));
        incremental.Remove(Value::Int(*it));
        live.erase(it);
      } else {
        incremental.Insert(Value::Int(v));
        live.insert(v);
      }
      AggState fresh(op);
      for (int64_t x : live) fresh.Insert(Value::Int(x));
      auto a = incremental.Current();
      auto b = fresh.Current();
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) {
        ASSERT_EQ(*a, *b) << "op=" << static_cast<int>(op);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace sorel
