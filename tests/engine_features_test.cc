// Engine facilities beyond the core cycle: startup forms, tracing,
// LoadFile, and run statistics.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "tests/test_util.h"

namespace sorel {
namespace {

TEST(StartupTest, MakesWmesAtLoadTime) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine,
           "(literalize player name team)"
           "(p greet (player ^name <n>) --> (write hi <n>))"
           "(startup (make player ^name Jack ^team A)"
           "         (make player ^name Sue ^team B))");
  EXPECT_EQ(engine.wm().size(), 2u);
  EXPECT_EQ(engine.conflict_set().size(), 2u);
  EXPECT_EQ(MustRun(engine), 2);
}

TEST(StartupTest, WriteBindIfWork) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine,
           "(startup (bind <x> (2 + 3))"
           "         (if (<x> == 5) (write yes <x>) else (write no)))");
  EXPECT_EQ(out.str(), "yes 5");
}

TEST(StartupTest, RejectsMatchDependentActions) {
  Engine engine;
  EXPECT_FALSE(engine.LoadString("(startup (remove 1))").ok());
  EXPECT_FALSE(engine.LoadString("(startup (halt) (foreach <x>))").ok());
  EXPECT_FALSE(engine.LoadString("(startup (write <unbound>))").ok());
  EXPECT_FALSE(engine.LoadString("(startup (make ghost))").ok());
}

TEST(StartupTest, SymbolConstantsResolved) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine,
           "(literalize m v)"
           "(startup (make m ^v hello))");
  auto snap = engine.wm().Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0]->field(0), engine.Sym("hello"));
}

TEST(TraceTest, FiringTraceNamesRuleAndTags) {
  EngineOptions options;
  options.trace_firings = true;
  Engine engine(options);
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p r (player ^name <n>) --> (bind <x> 1))");
  MustMake(engine, "player", {{"name", engine.Sym("a")}});
  MustRun(engine);
  EXPECT_NE(out.str().find("FIRE r 1 (1 row)"), std::string::npos);
}

TEST(TraceTest, WmTraceShowsAddsAndRemoves) {
  EngineOptions options;
  options.trace_wm = true;
  Engine engine(options);
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema));
  TimeTag tag = MustMake(engine, "player", {{"name", engine.Sym("a")}});
  ASSERT_TRUE(engine.RemoveWme(tag).ok());
  EXPECT_NE(out.str().find("==> 1: (player ^name a)"), std::string::npos);
  EXPECT_NE(out.str().find("<== 1: (player ^name a)"), std::string::npos);
}

TEST(TraceTest, RuntimeToggle) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema));
  engine.set_trace_wm(true);
  MustMake(engine, "player", {});
  engine.set_trace_wm(false);
  MustMake(engine, "player", {});
  std::string text = out.str();
  EXPECT_NE(text.find("==> 1:"), std::string::npos);
  EXPECT_EQ(text.find("==> 2:"), std::string::npos);
}

TEST(LoadFileTest, LoadsProgramsFromDisk) {
  std::string path = ::testing::TempDir() + "/sorel_loadfile_test.ops";
  {
    std::ofstream f(path);
    f << "(literalize item price)\n"
         "; comment line\n"
         "(p cheap (item ^price < 10) --> (write cheap))\n"
         "(startup (make item ^price 5))\n";
  }
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  ASSERT_TRUE(engine.LoadFile(path).ok());
  EXPECT_EQ(MustRun(engine), 1);
  EXPECT_EQ(out.str(), "cheap");
  std::remove(path.c_str());
}

TEST(LoadFileTest, MissingFileErrors) {
  Engine engine;
  EXPECT_FALSE(engine.LoadFile("/nonexistent/nope.ops").ok());
}

TEST(RunStatsTest, PerRuleFiringCounts) {
  Engine engine;
  std::ostringstream out;
  engine.set_output(&out);
  MustLoad(engine, std::string(kPlayerSchema) +
                       "(p a (player ^team A) --> (bind <x> 1))"
                       "(p b (player ^team B) --> (bind <x> 1))");
  MakeFigure1Wm(engine);
  MustRun(engine);
  const Engine::RunStats& stats = engine.run_stats();
  EXPECT_EQ(stats.firings, 5u);
  EXPECT_EQ(stats.firings_by_rule.at("a"), 2u);
  EXPECT_EQ(stats.firings_by_rule.at("b"), 3u);
}

}  // namespace
}  // namespace sorel
