#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace sorel {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> runs(kTasks);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&runs, i] { runs[i].fetch_add(1); });
  }
  pool.RunAll(std::move(tasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
}

TEST(ThreadPoolTest, RunAllIsABarrier) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int round = 0; round < 20; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1);
      });
    }
    pool.RunAll(std::move(tasks));
    // Every task of this round (and all earlier rounds) completed before
    // RunAll returned.
    EXPECT_EQ(done.load(), (round + 1) * 8);
  }
}

TEST(ThreadPoolTest, CallerHelpsDrain) {
  // A 0-worker pool still completes batches: the calling thread drains the
  // queue itself.
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  std::atomic<int> done{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) tasks.push_back([&done] { done.fetch_add(1); });
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPoolTest, TasksSpreadAcrossThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&mu, &ids] {
      // Stall long enough that one thread cannot drain the queue alone.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_GT(ids.size(), 1u);
}

TEST(ThreadPoolTest, StatsCountBatchesAndTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.stats().threads, 3u);
  EXPECT_EQ(pool.stats().batches, 0u);
  pool.RunAll({[] {}, [] {}});
  pool.RunAll({[] {}, [] {}, [] {}});
  EXPECT_EQ(pool.stats().batches, 2u);
  EXPECT_EQ(pool.stats().tasks, 5u);
  EXPECT_GE(pool.stats().max_task_depth, 1u);
  pool.ResetStats();
  EXPECT_EQ(pool.stats().batches, 0u);
  EXPECT_EQ(pool.stats().tasks, 0u);
  EXPECT_EQ(pool.stats().max_task_depth, 0u);
  // The thread count is a property of the pool, not of the measured phase.
  EXPECT_EQ(pool.stats().threads, 3u);
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  pool.RunAll({});
  EXPECT_EQ(pool.stats().tasks, 0u);
}

}  // namespace
}  // namespace sorel
