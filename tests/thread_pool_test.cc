#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace sorel {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> runs(kTasks);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&runs, i] { runs[i].fetch_add(1); });
  }
  pool.RunAll(std::move(tasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
}

TEST(ThreadPoolTest, RunAllIsABarrier) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int round = 0; round < 20; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1);
      });
    }
    pool.RunAll(std::move(tasks));
    // Every task of this round (and all earlier rounds) completed before
    // RunAll returned.
    EXPECT_EQ(done.load(), (round + 1) * 8);
  }
}

TEST(ThreadPoolTest, CallerHelpsDrain) {
  // A 0-worker pool still completes batches: the calling thread drains the
  // queue itself.
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  std::atomic<int> done{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) tasks.push_back([&done] { done.fetch_add(1); });
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPoolTest, TasksSpreadAcrossThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&mu, &ids] {
      // Stall long enough that one thread cannot drain the queue alone.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_GT(ids.size(), 1u);
}

TEST(ThreadPoolTest, StatsCountBatchesAndTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.stats().threads, 3u);
  EXPECT_EQ(pool.stats().batches, 0u);
  pool.RunAll({[] {}, [] {}});
  pool.RunAll({[] {}, [] {}, [] {}});
  EXPECT_EQ(pool.stats().batches, 2u);
  EXPECT_EQ(pool.stats().tasks, 5u);
  EXPECT_GE(pool.stats().max_task_depth, 1u);
  pool.ResetStats();
  EXPECT_EQ(pool.stats().batches, 0u);
  EXPECT_EQ(pool.stats().tasks, 0u);
  EXPECT_EQ(pool.stats().max_task_depth, 0u);
  // The thread count is a property of the pool, not of the measured phase.
  EXPECT_EQ(pool.stats().threads, 3u);
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  pool.RunAll({});
  EXPECT_EQ(pool.stats().tasks, 0u);
}

// --- soak / stress (run under TSan via the `concurrency` ctest label) ----

TEST(ThreadPoolSoakTest, ManySmallBatchesBackToBack) {
  // Thousands of tiny batches stress the wake/sleep edges: a worker parked
  // between batches must see the next batch's enqueue, and the caller must
  // never return early.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  constexpr int kBatches = 4000;
  for (int b = 0; b < kBatches; ++b) {
    int size = 1 + b % 3;
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < size; ++i) {
      tasks.push_back([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.RunAll(std::move(tasks));
    ASSERT_EQ(done.load(), (b / 3) * 6 + (b % 3 == 0 ? 1 : b % 3 == 1 ? 3 : 6))
        << "batch " << b;
  }
  EXPECT_EQ(pool.stats().batches, static_cast<uint64_t>(kBatches));
}

TEST(ThreadPoolSoakTest, NestedRunAllFromWorkerTasks) {
  // Tasks fork sub-batches from inside the pool (the intra-rule split does
  // exactly this during a replay task). The inner RunAll must complete via
  // help-draining even with every worker occupied by an outer task, and
  // the nested_batches stat must see each inner batch.
  ThreadPool pool(2);
  std::atomic<int> inner_done{0};
  std::vector<std::function<void()>> outer;
  constexpr int kOuter = 8;
  constexpr int kInnerPer = 6;
  for (int i = 0; i < kOuter; ++i) {
    outer.push_back([&pool, &inner_done] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < kInnerPer; ++j) {
        inner.push_back([&inner_done] { inner_done.fetch_add(1); });
      }
      pool.RunAll(std::move(inner));
    });
  }
  pool.RunAll(std::move(outer));
  EXPECT_EQ(inner_done.load(), kOuter * kInnerPer);
  EXPECT_EQ(pool.stats().batches, static_cast<uint64_t>(1 + kOuter));
  EXPECT_EQ(pool.stats().nested_batches, static_cast<uint64_t>(kOuter));
  EXPECT_GE(pool.stats().max_task_depth, 2u);
}

TEST(ThreadPoolSoakTest, DeeplyNestedForksOnZeroWorkerPool) {
  // A 0-worker pool degenerates to recursive help-draining on the caller's
  // stack; three levels of forking must still run every leaf exactly once.
  ThreadPool pool(0);
  std::atomic<int> leaves{0};
  std::vector<std::function<void()>> top;
  for (int i = 0; i < 3; ++i) {
    top.push_back([&pool, &leaves] {
      std::vector<std::function<void()>> mid;
      for (int j = 0; j < 3; ++j) {
        mid.push_back([&pool, &leaves] {
          std::vector<std::function<void()>> leaf;
          for (int k = 0; k < 3; ++k) {
            leaf.push_back([&leaves] { leaves.fetch_add(1); });
          }
          pool.RunAll(std::move(leaf));
        });
      }
      pool.RunAll(std::move(mid));
    });
  }
  pool.RunAll(std::move(top));
  EXPECT_EQ(leaves.load(), 27);
  EXPECT_EQ(pool.stats().nested_batches, 12u);  // 3 mid + 9 leaf batches
  EXPECT_GE(pool.stats().max_task_depth, 3u);
}

TEST(ThreadPoolSoakTest, ConcurrentCallersShareThePool) {
  // Several external threads issue batches into one pool concurrently;
  // each caller's RunAll must act as a barrier for its own batch only.
  ThreadPool pool(3);
  constexpr int kCallers = 4;
  constexpr int kRounds = 200;
  std::atomic<int> done{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &done] {
      for (int r = 0; r < kRounds; ++r) {
        std::atomic<int> mine{0};
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 4; ++i) {
          tasks.push_back([&mine, &done] {
            mine.fetch_add(1);
            done.fetch_add(1);
          });
        }
        pool.RunAll(std::move(tasks));
        ASSERT_EQ(mine.load(), 4);
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(done.load(), kCallers * kRounds * 4);
  EXPECT_EQ(pool.stats().tasks,
            static_cast<uint64_t>(kCallers * kRounds * 4));
}

}  // namespace
}  // namespace sorel
