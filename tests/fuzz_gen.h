#ifndef SOREL_TESTS_FUZZ_GEN_H_
#define SOREL_TESTS_FUZZ_GEN_H_

// Seeded random program + schedule generator for the differential fuzz
// harness (differential_fuzz_test.cc). Programs are built from a fixed
// schema (`item ^id ^cat ^val`) by composing well-formed fragments —
// variables are always bound before reuse, negations only constrain, set
// rules follow the grammar the compiler accepts — so every generated
// program loads, and every difference between two engine configurations is
// a real divergence, not a parse artifact. The same seed always yields the
// same program and schedule.

#include <cstdint>
#include <string>
#include <vector>

namespace sorel {
namespace fuzz {

/// Deterministic LCG so failures reproduce from the seed alone.
class FuzzRng {
 public:
  explicit FuzzRng(unsigned seed) : state_(seed * 2654435761u + 97u) {}
  unsigned Next(unsigned bound) {
    state_ = state_ * 1664525u + 1013904223u;
    return (state_ >> 16) % bound;
  }
  bool Chance(unsigned percent) { return Next(100) < percent; }

 private:
  unsigned state_;
};

/// One step of a working-memory schedule.
struct FuzzOp {
  enum class Kind { kMake, kRemove, kRun };
  Kind kind = Kind::kMake;
  int id = 0;       // kMake
  int cat = 0;      // kMake: index into kCats
  int64_t val = 0;  // kMake
  unsigned pick = 0;  // kRemove: index into the live snapshot (mod size)
  int cap = 0;        // kRun: max_firings
};

inline constexpr const char* kCats[] = {"A", "B", "C"};
// `spawn` is a make-only sink class: no rule conditions mention it, so
// RHS makes inside foreach bodies can't feed back into their own set CE
// and blow the working memory up geometrically.
inline constexpr const char* kFuzzSchema =
    "(literalize item id cat val)\n(literalize spawn src v)";

/// A generated program: the schema plus independent rules (independence is
/// what lets the shrinker drop rules one at a time).
struct FuzzProgram {
  std::vector<std::string> rules;
  bool has_set = false;

  std::string Source() const {
    std::string out = kFuzzSchema;
    for (const std::string& r : rules) {
      out += "\n";
      out += r;
    }
    return out;
  }
};

namespace internal {

inline std::string Num(int64_t v) { return std::to_string(v); }

/// A positive condition element over `item`, with variable pools threaded
/// through so later CEs join on earlier bindings.
inline std::string GenPositiveCe(FuzzRng& rng, int rule, int* next_var,
                                 std::vector<std::string>* cat_vars,
                                 std::vector<std::string>* val_vars) {
  auto fresh = [&](const char* stem) {
    return "<" + std::string(stem) + Num(rule) + "x" + Num((*next_var)++) +
           ">";
  };
  std::string ce = "(item";
  // Every CE must end up selective (a constant, a comparison, or a join on
  // an existing variable): a rule of bare `(item)` CEs cross-products the
  // whole WM per CE, which is cubic token blowup, not useful coverage.
  bool selective = false;
  switch (rng.Next(4)) {
    case 0:
      break;
    case 1:
      ce += " ^cat " + std::string(kCats[rng.Next(3)]);
      selective = true;
      break;
    case 2:
      if (!cat_vars->empty() && rng.Chance(50)) {
        ce += " ^cat " +
              (*cat_vars)[rng.Next(static_cast<unsigned>(cat_vars->size()))];
        selective = true;  // join on an earlier binding
      } else {
        std::string v = fresh("c");
        cat_vars->push_back(v);
        ce += " ^cat " + v;
      }
      break;
    case 3:
      if (!cat_vars->empty()) {
        ce += " ^cat <> " +
              (*cat_vars)[rng.Next(static_cast<unsigned>(cat_vars->size()))];
        selective = true;
      }
      break;
  }
  switch (rng.Next(4)) {
    case 0:
      break;
    case 1:
      ce += " ^val > " + Num(rng.Next(8));
      selective = true;
      break;
    case 2:
      ce += " ^val < " + Num(2 + rng.Next(8));
      selective = true;
      break;
    case 3:
      if (!val_vars->empty() && rng.Chance(40)) {
        ce += " ^val " +
              (*val_vars)[rng.Next(static_cast<unsigned>(val_vars->size()))];
        selective = true;
      } else {
        std::string v = fresh("v");
        val_vars->push_back(v);
        ce += " ^val " + v;
      }
      break;
  }
  if (rng.Chance(25)) ce += " ^id " + fresh("i");
  if (!selective) ce += " ^cat " + std::string(kCats[rng.Next(3)]);
  ce += ")";
  return ce;
}

/// Tuple-oriented rule: plain CEs with joins, negations, and a mutating
/// RHS over the first CE's element variable. Every matcher (TREAT
/// included) accepts these. `neg_chance` is the percent chance of a first
/// negated CE (a second follows at half that chance) — raise it to stress
/// the negation paths, whose blocking/unblocking logic is where removal
/// ordering bugs live.
inline std::string GenTupleRule(FuzzRng& rng, int index,
                                unsigned neg_chance = 35) {
  int next_var = 0;
  std::vector<std::string> cat_vars, val_vars;
  std::string elem = "<e" + Num(index) + ">";
  std::string lhs;
  unsigned nconds = 1 + rng.Next(3);
  for (unsigned c = 0; c < nconds; ++c) {
    std::string ce =
        GenPositiveCe(rng, index, &next_var, &cat_vars, &val_vars);
    if (c == 0) ce = "{ " + ce + " " + elem + " }";
    lhs += " " + ce;
  }
  unsigned chance = neg_chance;
  while (chance > 0 && rng.Chance(chance)) {
    std::string neg = " - (item ^cat ";
    if (!cat_vars.empty() && rng.Chance(50)) {
      neg += cat_vars[rng.Next(static_cast<unsigned>(cat_vars.size()))];
    } else {
      neg += kCats[rng.Next(3)];
    }
    if (rng.Chance(50)) neg += " ^val > " + Num(rng.Next(9));
    neg += ")";
    lhs += neg;
    chance /= 2;
  }
  std::string rhs;
  unsigned nacts = 1 + rng.Next(2);
  for (unsigned a = 0; a < nacts; ++a) {
    switch (rng.Next(6)) {
      case 0:
        rhs += " (modify " + elem + " ^val " + Num(rng.Next(5)) + ")";
        break;
      case 1:
        rhs += " (modify " + elem + " ^cat " +
               std::string(kCats[rng.Next(3)]) + ")";
        break;
      case 2:
        rhs += " (remove " + elem + ")";
        break;
      case 3:
        rhs += " (remove 1)";
        break;
      case 4:
        rhs += " (make item ^id " + Num(rng.Next(9)) + " ^cat " +
               std::string(kCats[rng.Next(3)]) + " ^val " +
               Num(rng.Next(4)) + ")";
        break;
      case 5:
        rhs += " (write fired-r" + Num(index) + " (crlf))";
        break;
    }
  }
  return "(p r" + Num(index) + lhs + " -->" + rhs + ")";
}

/// Set-oriented rule: a set CE with PVs, an optional :scalar partition, an
/// aggregate :test, and a set-modify / set-remove / foreach RHS (TREAT
/// rejects these by design).
inline std::string GenSetRule(FuzzRng& rng, int index) {
  std::string n = Num(index);
  std::string P = "<P" + n + ">", t = "<t" + n + ">", s = "<s" + n + ">";
  bool with_cat = rng.Chance(60);
  std::string lhs = " { [item";
  if (with_cat) lhs += " ^cat " + t;
  lhs += " ^val " + s;
  if (rng.Chance(25)) lhs += " ^id <i" + n + ">";
  lhs += "] " + P + " }";
  bool scalar_cat = with_cat && rng.Chance(50);
  if (scalar_cat) lhs += " :scalar (" + t + ")";
  switch (rng.Next(5)) {
    case 0:
      lhs += " :test ((sum " + s + ") > " + Num(4 + rng.Next(10)) + ")";
      break;
    case 1:
      lhs += " :test ((count " + P + ") >= " + Num(2 + rng.Next(3)) + ")";
      break;
    case 2:
      lhs += " :test ((max " + s + ") > " + Num(3 + rng.Next(5)) + ")";
      break;
    case 3:
      lhs += " :test ((min " + s + ") < " + Num(1 + rng.Next(4)) + ")";
      break;
    case 4:
      lhs += " :test ((avg " + s + ") >= " + Num(2 + rng.Next(4)) + ")";
      break;
  }
  std::string rhs;
  const char* order =
      rng.Chance(50) ? (rng.Chance(50) ? " ascending" : " descending") : "";
  switch (rng.Next(6)) {
    case 0:
      rhs = " (set-modify " + P + " ^val " + Num(rng.Next(3)) + ")";
      break;
    case 1:
      rhs = " (set-modify " + P + " ^cat " +
            std::string(kCats[rng.Next(3)]) + " ^val 0)";
      break;
    case 2:
      rhs = " (set-remove " + P + ")";
      break;
    case 3:
      // Parallel-eligible foreach body (modify, and sometimes a make).
      rhs = " (foreach " + P + order + " (modify " + P + " ^val (" + s +
            " + 1))";
      if (rng.Chance(30)) {
        rhs += " (make spawn ^src " + s + " ^v " + Num(rng.Next(3)) + ")";
      }
      rhs += ")";
      break;
    case 4:
      rhs = " (foreach " + P + order + " (remove " + P + "))";
      break;
    case 5:
      // Write keeps the foreach on the sequential path — the output
      // interleaving itself is part of the differential check.
      rhs = " (foreach " + P + order + " (write " + s + " (crlf)))";
      break;
  }
  return "(p s" + n + lhs + " -->" + rhs + ")";
}

}  // namespace internal

/// Generates a program of 2-4 independent rules. With `allow_set`, roughly
/// half the rules are set-oriented (and at least one is). `neg_chance`
/// passes through to GenTupleRule (default keeps historical seeds stable).
inline FuzzProgram GenProgram(FuzzRng& rng, bool allow_set,
                              unsigned neg_chance = 35) {
  FuzzProgram p;
  unsigned nrules = 2 + rng.Next(3);
  for (unsigned r = 0; r < nrules; ++r) {
    bool make_set =
        allow_set && (rng.Chance(40) || (r + 1 == nrules && !p.has_set));
    if (make_set) {
      p.rules.push_back(internal::GenSetRule(rng, static_cast<int>(r)));
      p.has_set = true;
    } else {
      p.rules.push_back(
          internal::GenTupleRule(rng, static_cast<int>(r), neg_chance));
    }
  }
  return p;
}

/// Generates a WM schedule of `steps` ops: makes, removes, and (when
/// `with_runs`) capped recognize-act runs. `remove_pct` is the percent of
/// steps that retract (default ~17%, the historical 1-in-6); remove-heavy
/// schedules (40-60%) drain the WM repeatedly, which is what exercises
/// negated-CE unblocking, token deletion, and SOI emptying.
inline std::vector<FuzzOp> GenSchedule(FuzzRng& rng, int steps,
                                       bool with_runs,
                                       unsigned remove_pct = 17) {
  std::vector<FuzzOp> ops;
  ops.reserve(static_cast<size_t>(steps));
  for (int i = 0; i < steps; ++i) {
    FuzzOp op;
    unsigned r = rng.Next(100);
    if (with_runs && r < 17) {
      op.kind = FuzzOp::Kind::kRun;
      op.cap = 4 + static_cast<int>(rng.Next(5));
    } else if (r >= 17 && r < 17 + remove_pct) {
      op.kind = FuzzOp::Kind::kRemove;
      op.pick = rng.Next(1024);
    } else {
      op.kind = FuzzOp::Kind::kMake;
      op.id = static_cast<int>(rng.Next(6));
      op.cat = static_cast<int>(rng.Next(3));
      op.val = static_cast<int64_t>(rng.Next(10));
    }
    ops.push_back(op);
  }
  return ops;
}

/// Renders a schedule as one line per op — the repro format.
inline std::string ScheduleToString(const std::vector<FuzzOp>& ops) {
  std::string out;
  for (const FuzzOp& op : ops) {
    switch (op.kind) {
      case FuzzOp::Kind::kMake:
        out += "make id=" + internal::Num(op.id) + " cat=" +
               kCats[op.cat] + " val=" + internal::Num(op.val) + "\n";
        break;
      case FuzzOp::Kind::kRemove:
        out += "remove pick=" + internal::Num(op.pick) + "\n";
        break;
      case FuzzOp::Kind::kRun:
        out += "run cap=" + internal::Num(op.cap) + "\n";
        break;
    }
  }
  return out;
}

}  // namespace fuzz
}  // namespace sorel

#endif  // SOREL_TESTS_FUZZ_GEN_H_
