#!/usr/bin/env python3
"""Compare a bench --json report against a committed baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json [--time-ratio R]

Two checks, both hard failures (exit 1):

1. Counter drift: every non-timing field must be exactly equal between the
   baseline and the current run, on the labels both reports contain. The
   match counters (join attempts, tokens created/deleted, pool hits, ...)
   are deterministic for a fixed workload and configuration, so any drift
   means the match layer's observable behavior changed — which is either a
   bug or a change that must refresh the committed seed JSON in the same
   commit.

2. Phase-time regression: within the *current* run, each `*_ms` phase is
   summed over every `soa=on` row and over the matching `soa=off` ablation
   twins; the `soa=on` total must not exceed the given ratio (default 1.25)
   times the `soa=off` total. Aggregating over the whole sweep keeps the
   gate meaningful on noisy CI runners — single-row ratios flap with
   scheduler jitter — while still catching the columnar layout falling off
   a cliff relative to the tuple layout.

Timing fields (`*_ms`, `*speedup*`) and scheduling-shaped high-water marks
(`pool.max_task_depth`, `pool.nested_batches`) are excluded from the
equality check; `host_cores` lives in the config block, which is not
compared.
"""

import argparse
import json
import sys

# Fields whose values depend on wall-clock or scheduler behavior.
SKIP_SUFFIXES = ("_ms",)
SKIP_SUBSTRINGS = ("speedup",)
SKIP_FIELDS = {"label", "pool.max_task_depth", "pool.nested_batches"}


def is_timing_field(name):
    if name in SKIP_FIELDS:
        return True
    if any(name.endswith(s) for s in SKIP_SUFFIXES):
        return True
    return any(s in name for s in SKIP_SUBSTRINGS)


def rows_by_label(report):
    return {row["label"]: row for row in report.get("results", [])}


def check_counter_drift(baseline, current):
    base_rows = rows_by_label(baseline)
    cur_rows = rows_by_label(current)
    shared = sorted(set(base_rows) & set(cur_rows))
    if not shared:
        print("bench_compare: no shared labels between baseline and "
              "current report — nothing to compare", file=sys.stderr)
        return ["no shared labels"]
    failures = []
    for label in shared:
        b, c = base_rows[label], cur_rows[label]
        for field in sorted(set(b) & set(c)):
            if is_timing_field(field):
                continue
            if b[field] != c[field]:
                failures.append(
                    f"[{label}] {field}: baseline={b[field]} "
                    f"current={c[field]}")
    return failures


def check_soa_regression(current, ratio):
    cur_rows = rows_by_label(current)
    on_totals, off_totals = {}, {}
    pairs = 0
    for label, on_row in sorted(cur_rows.items()):
        # Rows come in twin pairs: ".../soa=on" vs ".../soa=off", or a
        # default row (soa on) with an explicit "/soa=off" twin.
        if label.endswith("/soa=off"):
            continue
        if "/soa=on" in label:
            off_label = label.replace("/soa=on", "/soa=off")
        else:
            off_label = label + "/soa=off"
        off_row = cur_rows.get(off_label)
        if off_row is None:
            continue
        pairs += 1
        for field in sorted(set(on_row) & set(off_row)):
            if not field.endswith("_ms"):
                continue
            on_totals[field] = on_totals.get(field, 0.0) + on_row[field]
            off_totals[field] = off_totals.get(field, 0.0) + off_row[field]
    failures = []
    for field in sorted(on_totals):
        on_ms, off_ms = on_totals[field], off_totals[field]
        # Sub-millisecond totals are all noise.
        if off_ms < 1.0:
            continue
        if on_ms > off_ms * ratio:
            failures.append(
                f"{field} over {pairs} row pairs: soa=on {on_ms:.2f}ms > "
                f"{ratio:.2f}x soa=off {off_ms:.2f}ms")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--time-ratio", type=float, default=1.25,
                        help="max allowed soa=on / soa=off time ratio")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    if baseline.get("bench") != current.get("bench"):
        print(f"bench_compare: comparing different benches: "
              f"{baseline.get('bench')} vs {current.get('bench')}",
              file=sys.stderr)
        return 1

    drift = check_counter_drift(baseline, current)
    slow = check_soa_regression(current, args.time_ratio)

    for line in drift:
        print(f"COUNTER DRIFT: {line}", file=sys.stderr)
    for line in slow:
        print(f"TIME REGRESSION: {line}", file=sys.stderr)
    if drift or slow:
        print(f"bench_compare: FAILED ({len(drift)} drifted counters, "
              f"{len(slow)} slow phases)", file=sys.stderr)
        return 1
    n = len(set(rows_by_label(baseline)) & set(rows_by_label(current)))
    print(f"bench_compare: OK ({n} shared rows, counters identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
